package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
)

// GaussianBlobs samples n points from k isotropic Gaussians placed at the
// given centers (cycled through round-robin so cluster sizes are balanced).
// It returns the dataset and the ground-truth labels.
func GaussianBlobs(seed int64, n int, centers [][]float64, sigma float64) (*Dataset, []int) {
	rng := rand.New(rand.NewSource(seed))
	d := len(centers[0])
	pts := make([][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % len(centers)
		labels[i] = c
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			row[j] = centers[c][j] + rng.NormFloat64()*sigma
		}
		pts[i] = row
	}
	return New(pts), labels
}

// FourBlobToy builds the tutorial's slide-26 toy: four tight blobs at the
// corners of the unit square. The dataset admits two equally meaningful
// 2-partitions, returned as ground truths: horizontal (left vs right
// columns) and vertical (bottom vs top rows).
func FourBlobToy(seed int64, perBlob int) (ds *Dataset, horizontal, vertical []int) {
	rng := rand.New(rand.NewSource(seed))
	corners := [][2]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	n := 4 * perBlob
	pts := make([][]float64, 0, n)
	horizontal = make([]int, 0, n)
	vertical = make([]int, 0, n)
	const sigma = 0.08
	for ci, c := range corners {
		for i := 0; i < perBlob; i++ {
			pts = append(pts, []float64{
				c[0] + rng.NormFloat64()*sigma,
				c[1] + rng.NormFloat64()*sigma,
			})
			horizontal = append(horizontal, ci%2) // 0 = left column, 1 = right
			vertical = append(vertical, ci/2)     // 0 = bottom row, 1 = top
		}
	}
	return New(pts), horizontal, vertical
}

// ViewSpec describes one hidden view of a multi-view dataset.
type ViewSpec struct {
	Dims  int     // number of dimensions in this view
	K     int     // number of clusters in this view
	Sep   float64 // distance between adjacent cluster centers
	Sigma float64 // within-cluster standard deviation
}

// MultiViewGaussians builds the slide-10 "customer" scenario: one table whose
// dimensions decompose into independent views, each with its own clustering.
// Cluster memberships are drawn independently per view, so the views are
// statistically orthogonal groupings of the same objects.
//
// It returns the concatenated dataset, one ground-truth labeling per view,
// and the dimension indices of each view within the concatenated space.
func MultiViewGaussians(seed int64, n int, specs []ViewSpec) (*Dataset, [][]int, [][]int) {
	rng := rand.New(rand.NewSource(seed))
	labelings := make([][]int, len(specs))
	parts := make([]*Dataset, len(specs))
	for v, spec := range specs {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(spec.K)
		}
		labelings[v] = labels
		centers := simplexCenters(rng, spec.K, spec.Dims, spec.Sep)
		pts := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, spec.Dims)
			for j := 0; j < spec.Dims; j++ {
				row[j] = centers[labels[i]][j] + rng.NormFloat64()*spec.Sigma
			}
			pts[i] = row
		}
		parts[v] = New(pts)
	}
	ds, err := Concat(parts...)
	if err != nil {
		panic(fmt.Sprintf("dataset: MultiViewGaussians concat: %v", err)) // unreachable: equal n by construction
	}
	viewDims := make([][]int, len(specs))
	offset := 0
	for v, spec := range specs {
		dims := make([]int, spec.Dims)
		for j := range dims {
			dims[j] = offset + j
		}
		viewDims[v] = dims
		offset += spec.Dims
	}
	return ds, labelings, viewDims
}

// simplexCenters places k well-separated centers in d dimensions: each
// center gets coordinates sep*position on a distinct axis pattern plus small
// jitter, guaranteeing pairwise distance of at least roughly sep.
func simplexCenters(rng *rand.Rand, k, d int, sep float64) [][]float64 {
	centers := make([][]float64, k)
	for c := 0; c < k; c++ {
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			// Walk the centers along a diagonal lattice so any pair differs
			// by at least sep in some coordinate.
			row[j] = sep * float64((c+j*(c+1))%k)
			row[j] += rng.NormFloat64() * 0.01 * sep
		}
		centers[c] = row
	}
	return centers
}

// SubspaceSpec describes one hidden axis-parallel subspace cluster.
type SubspaceSpec struct {
	Dims    []int   // relevant dimensions
	Size    int     // number of member objects
	Width   float64 // cluster extent per relevant dimension (in [0,1] space)
	Objects []int   // optional explicit members; sampled when nil
}

// SubspaceData embeds the given subspace clusters into an n×d dataset that is
// otherwise uniform noise on [0,1]^d — the standard benchmark layout for
// CLIQUE/SCHISM/SUBCLU-style evaluations. Objects may participate in several
// clusters as long as the clusters' dimension sets are disjoint; this is the
// "each object may have several roles" property of slide 5. It returns the
// dataset and the ground truth.
func SubspaceData(seed int64, n, d int, specs []SubspaceSpec) (*Dataset, core.SubspaceClustering, error) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		pts[i] = row
	}
	truth := make(core.SubspaceClustering, 0, len(specs))
	for si, spec := range specs {
		if spec.Size > n {
			return nil, nil, fmt.Errorf("dataset: spec %d size %d exceeds n=%d", si, spec.Size, n)
		}
		for _, dim := range spec.Dims {
			if dim < 0 || dim >= d {
				return nil, nil, fmt.Errorf("dataset: spec %d dim %d out of range", si, dim)
			}
		}
		objects := spec.Objects
		if objects == nil {
			objects = rng.Perm(n)[:spec.Size]
		}
		// Center placed so the cluster fits inside [0,1].
		center := make([]float64, len(spec.Dims))
		for j := range center {
			center[j] = spec.Width/2 + rng.Float64()*(1-spec.Width)
		}
		for _, o := range objects {
			for j, dim := range spec.Dims {
				pts[o][dim] = center[j] + (rng.Float64()-0.5)*spec.Width
			}
		}
		truth = append(truth, core.NewSubspaceCluster(objects, spec.Dims))
	}
	return New(pts), truth, nil
}

// TwoSourceViews builds the multi-source scenario of section 5: the same n
// objects described by two representations that are conditionally independent
// given a shared latent cluster label. unreliableB > 0 replaces that fraction
// of view-B rows with pure noise (the "unreliable view" of slide 107).
func TwoSourceViews(seed int64, n, k, dimA, dimB int, sigma, unreliableB float64) (viewA, viewB *Dataset, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	labels = make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(k)
	}
	centersA := simplexCenters(rng, k, dimA, 4)
	centersB := simplexCenters(rng, k, dimB, 4)
	ptsA := make([][]float64, n)
	ptsB := make([][]float64, n)
	for i := 0; i < n; i++ {
		a := make([]float64, dimA)
		for j := range a {
			a[j] = centersA[labels[i]][j] + rng.NormFloat64()*sigma
		}
		b := make([]float64, dimB)
		if rng.Float64() < unreliableB {
			for j := range b {
				b[j] = rng.Float64()*8 - 4 // uniform junk across the data range
			}
		} else {
			for j := range b {
				b[j] = centersB[labels[i]][j] + rng.NormFloat64()*sigma
			}
		}
		ptsA[i] = a
		ptsB[i] = b
	}
	return New(ptsA), New(ptsB), labels
}

// UniformHypercube samples n points uniformly from [0,1]^d; the substrate
// for the curse-of-dimensionality probe of slide 12.
func UniformHypercube(seed int64, n, d int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		pts[i] = row
	}
	return New(pts)
}

// RingAndBlob builds a 2-dimensional dataset with an annulus (ring) cluster
// and a Gaussian blob inside it — the classic arbitrary-shape case where
// density-based clustering succeeds and grid/centroid methods struggle
// (slide 74). Returns the dataset and ground truth labels (0 = ring,
// 1 = blob).
func RingAndBlob(seed int64, nRing, nBlob int) (*Dataset, []int) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, 0, nRing+nBlob)
	labels := make([]int, 0, nRing+nBlob)
	for i := 0; i < nRing; i++ {
		theta := rng.Float64() * 2 * math.Pi
		r := 1 + rng.NormFloat64()*0.05
		pts = append(pts, []float64{r * math.Cos(theta), r * math.Sin(theta)})
		labels = append(labels, 0)
	}
	for i := 0; i < nBlob; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
		labels = append(labels, 1)
	}
	return New(pts), labels
}

// CombineLabels returns the product labeling of two labelings: objects get
// the same combined label iff they agree in both inputs. Noise in either
// input yields noise.
func CombineLabels(a, b []int) []int {
	if len(a) != len(b) {
		panic("dataset: CombineLabels length mismatch")
	}
	type pair struct{ x, y int }
	idx := map[pair]int{}
	out := make([]int, len(a))
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			out[i] = core.Noise
			continue
		}
		p := pair{a[i], b[i]}
		id, ok := idx[p]
		if !ok {
			id = len(idx)
			idx[p] = id
		}
		out[i] = id
	}
	return out
}

// DistanceContrast returns the relative contrast
// (maxDist - minDist)/minDist of point o to all other points in ds under the
// Euclidean distance — the quantity of the Beyer et al. (1999) curse-of-
// dimensionality statement quoted on slide 12.
func DistanceContrast(ds *Dataset, o int) float64 {
	minD, maxD := math.Inf(1), math.Inf(-1)
	for i, p := range ds.Points {
		if i == o {
			continue
		}
		var s float64
		for j, v := range p {
			diff := v - ds.Points[o][j]
			s += diff * diff
		}
		d := math.Sqrt(s)
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD == 0 || math.IsInf(minD, 1) {
		return 0
	}
	return (maxD - minD) / minD
}
