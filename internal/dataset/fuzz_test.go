package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV reader never panics and that everything it
// accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n", true)
	f.Add("1,2\n3,4\n", false)
	f.Add("", false)
	f.Add("x\n", true)
	f.Add("1,2\n3\n", false)
	f.Add("NaN,Inf\n-Inf,1e308\n", false)
	f.Add("NaN,1\n", false)
	f.Add("1,Inf\n2,3\n", false)
	f.Add("nan,+Inf\n", true)
	f.Add("1,2\n3\n4,5\n", false)
	f.Add("a,b,c\n1,2\n", true)
	f.Fuzz(func(t *testing.T, input string, header bool) {
		ds, err := ReadCSV(strings.NewReader(input), header)
		if err != nil {
			return
		}
		for i, p := range ds.Points {
			for j, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted non-finite value %v at row %d col %d", v, i, j)
				}
			}
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted invalid dataset: %v", err)
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV(&buf, true)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != ds.N() || back.Dim() != ds.Dim() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d", ds.N(), ds.Dim(), back.N(), back.Dim())
		}
	})
}
