package ops

import (
	"net/http"
	"strings"
	"time"

	"multiclust/internal/obs"
)

// Request instrumentation. Instrument wraps the whole ops mux so every
// request — application or operational — gets the same treatment:
//
//   - trace identity: the W3C `traceparent` header is parsed when valid
//     and a fresh id is minted otherwise (malformed headers are telemetry
//     noise, never a 400); the id rides the request context
//     (obs.WithTraceID) and is echoed back via X-Trace-Id so the caller
//     can correlate later /v1/jobs/{id}/trace pulls.
//   - latency histograms: one http.<route>.<status class>_seconds
//     histogram observation per request on the context's recorder, plus
//     an http.requests counter. Routes are a small fixed vocabulary
//     (routeKey), not raw paths, so cardinality stays bounded.
//   - access log: one http.request JSONL line per request when a logger
//     is attached (method, route, status, bytes, dur_ms, trace, and the
//     job id when the handler set X-Job-Id).

// ParseTraceParent validates a W3C trace-context `traceparent` header
// value (version 00: `00-<32 hex trace id>-<16 hex parent id>-<2 hex
// flags>`, lowercase, ids non-zero) and returns the trace id. ok is
// false for anything malformed — unknown version, wrong length or
// separators, uppercase or non-hex bytes, all-zero ids.
func ParseTraceParent(v string) (traceID string, ok bool) {
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", false
	}
	if v[0] != '0' || v[1] != '0' {
		return "", false
	}
	id, parent, flags := v[3:35], v[36:52], v[53:55]
	if !isLowerHex(id) || !isLowerHex(parent) || !isLowerHex(flags) {
		return "", false
	}
	if allZeroHex(id) || allZeroHex(parent) {
		return "", false
	}
	return id, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZeroHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// statusWriter captures the response status and body size for metrics and
// the access log. It passes Flush through so streaming handlers (job
// chunk streams, /debug/pprof/profile) keep flushing through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeKey maps a request path onto the fixed route vocabulary used in
// histogram names and access-log lines. Path parameters collapse (every
// job id is "v1_jobs_id"), and unknown paths share one bucket, keeping
// metric cardinality bounded no matter what callers probe.
func routeKey(path string) string {
	switch path {
	case "/v1/jobs", "/v1/jobs/":
		return "v1_jobs"
	case "/metrics":
		return "metrics"
	case "/spans":
		return "spans"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	}
	if rest, ok := strings.CutPrefix(path, "/v1/jobs/"); ok {
		if _, sub, found := strings.Cut(rest, "/"); found {
			switch sub {
			case "spans":
				return "v1_jobs_id_spans"
			case "trace":
				return "v1_jobs_id_trace"
			case "stream":
				return "v1_jobs_id_stream"
			}
			return "v1_jobs_id_other"
		}
		return "v1_jobs_id"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "debug_pprof"
	}
	return "other"
}

// statusClass maps an HTTP status code to its class label ("2xx"…"5xx").
func statusClass(status int) string {
	switch {
	case status < 200:
		return "1xx"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	}
	return "5xx"
}

// Instrument wraps next with trace-id propagation, per-route latency
// histograms and access logging (see the package comment above). log may
// be nil (no access log); metrics go to the request context's recorder
// via obs.From, so with no recorder installed the metric path costs one
// nil check.
func Instrument(next http.Handler, log *obs.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID, ok := ParseTraceParent(r.Header.Get("traceparent"))
		if !ok {
			traceID = obs.MintTraceID()
		}
		r = r.WithContext(obs.WithTraceID(r.Context(), traceID))
		w.Header().Set("X-Trace-Id", traceID)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 {
			// Handler wrote nothing at all; net/http will send 200.
			sw.status = http.StatusOK
		}
		route := routeKey(r.URL.Path)
		if rec := obs.From(r.Context()); rec != nil {
			obs.Count(rec, "http.requests", 1)
			obs.Histogram(rec, "http."+route+"."+statusClass(sw.status)+"_seconds", elapsed.Seconds())
		}
		if log != nil {
			fields := []obs.LogField{
				obs.LStr("method", r.Method),
				obs.LStr("route", route),
				obs.LInt("status", int64(sw.status)),
				obs.LInt("bytes", sw.bytes),
				obs.LDurMS("dur_ms", elapsed),
				obs.LStr("trace", traceID),
			}
			if job := sw.Header().Get("X-Job-Id"); job != "" {
				fields = append(fields, obs.LStr("job", job))
			}
			log.Info("http.request", fields...)
		}
	})
}
