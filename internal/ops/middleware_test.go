package ops

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"multiclust/internal/obs"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

const validParent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

func TestParseTraceParentValid(t *testing.T) {
	id, ok := ParseTraceParent(validParent)
	if !ok || id != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("ParseTraceParent(valid) = %q, %v", id, ok)
	}
}

// The malformed-header satellite: every malformation is rejected by the
// parser (ok=false) and, at the HTTP layer, handled gracefully — a fresh
// id is minted, the request succeeds, nothing 400s or panics.
func TestParseTraceParentMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"wrong version":     "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"version ff":        "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"short trace id":    "00-0af7651916cd43dd-b7ad6b7169203331-01",
		"short parent id":   "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71-01",
		"all-zero trace id": "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"all-zero parent":   "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"uppercase hex":     "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
		"garbage bytes":     "00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-b7ad6b7169203331-01",
		"wrong separators":  "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01",
		"trailing junk":     validParent + "-extra",
		"binary noise":      "\x00\x01\x02\x03",
	}
	for name, header := range cases {
		if id, ok := ParseTraceParent(header); ok {
			t.Errorf("%s: ParseTraceParent(%q) accepted as %q", name, header, id)
		}
	}

	// End to end: each malformed header still gets a 200 and a freshly
	// minted, well-formed X-Trace-Id.
	handler := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), nil)
	for name, header := range cases {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if header != "" {
			req.Header.Set("traceparent", header)
		}
		rw := httptest.NewRecorder()
		handler.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			t.Errorf("%s: status = %d, want 200", name, rw.Code)
		}
		id := rw.Header().Get("X-Trace-Id")
		if !traceIDRe.MatchString(id) {
			t.Errorf("%s: minted X-Trace-Id %q is not 32 lowercase hex", name, id)
		}
		if id == "0af7651916cd43dd8448eb211c80319c" {
			t.Errorf("%s: malformed header's trace id was adopted", name)
		}
	}
}

func TestInstrumentEchoesValidTraceParent(t *testing.T) {
	var seen string
	handler := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = obs.TraceIDFrom(r.Context())
	}), nil)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("traceparent", validParent)
	rw := httptest.NewRecorder()
	handler.ServeHTTP(rw, req)
	want := "0af7651916cd43dd8448eb211c80319c"
	if got := rw.Header().Get("X-Trace-Id"); got != want {
		t.Fatalf("X-Trace-Id = %q, want %q", got, want)
	}
	if seen != want {
		t.Fatalf("context trace id = %q, want %q", seen, want)
	}
}

func TestInstrumentRecordsRouteHistograms(t *testing.T) {
	col := obs.NewCollector()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/jobs/j-1" {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	handler := Instrument(inner, nil)
	serve := func(path string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		req = req.WithContext(obs.NewContext(req.Context(), col))
		handler.ServeHTTP(httptest.NewRecorder(), req)
	}
	serve("/metrics")
	serve("/metrics")
	serve("/v1/jobs/j-1")
	serve("/v1/jobs/j-1/trace")
	serve("/no/such/path")

	if got := col.Counter("http.requests"); got != 5 {
		t.Fatalf("http.requests = %d, want 5", got)
	}
	for name, want := range map[string]int64{
		"http.metrics.2xx_seconds":          2,
		"http.v1_jobs_id.4xx_seconds":       1,
		"http.v1_jobs_id_trace.2xx_seconds": 1,
		"http.other.2xx_seconds":            1,
	} {
		h, ok := col.HistValue(name)
		if !ok || h.Count != want {
			t.Errorf("histogram %s count = %d (ok=%v), want %d", name, h.Count, ok, want)
		}
	}
}

func TestRouteKeyVocabulary(t *testing.T) {
	for path, want := range map[string]string{
		"/v1/jobs":              "v1_jobs",
		"/v1/jobs/":             "v1_jobs",
		"/v1/jobs/j-12":         "v1_jobs_id",
		"/v1/jobs/j-12/spans":   "v1_jobs_id_spans",
		"/v1/jobs/j-12/trace":   "v1_jobs_id_trace",
		"/v1/jobs/j-12/unknown": "v1_jobs_id_other",
		"/metrics":              "metrics",
		"/spans":                "spans",
		"/healthz":              "healthz",
		"/readyz":               "readyz",
		"/debug/pprof/heap":     "debug_pprof",
		"/anything/else":        "other",
	} {
		if got := routeKey(path); got != want {
			t.Errorf("routeKey(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestLogSchemaAccessLog: the middleware's access-log lines carry the
// documented http.request schema, including the job id relayed from the
// handler's X-Job-Id header.
func TestLogSchemaAccessLog(t *testing.T) {
	var sb strings.Builder
	logger := obs.NewLogger(&sb, obs.LogInfo)
	logger.SetClock(func() time.Time {
		return time.Date(2026, 8, 9, 7, 0, 0, 0, time.UTC)
	})
	handler := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Job-Id", "j-7")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"j-7"}`))
	}), logger)
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader("{}"))
	req.Header.Set("traceparent", validParent)
	handler.ServeHTTP(httptest.NewRecorder(), req)

	line := strings.TrimSuffix(sb.String(), "\n")
	if strings.Contains(line, "\n") {
		t.Fatalf("want exactly one access-log line, got: %q", sb.String())
	}
	if err := obs.ValidateLogLine([]byte(line)); err != nil {
		t.Fatalf("access-log line fails schema: %v\n%s", err, line)
	}
	for _, want := range []string{
		`"event":"http.request"`, `"method":"POST"`, `"route":"v1_jobs"`,
		`"status":202`, `"trace":"0af7651916cd43dd8448eb211c80319c"`, `"job":"j-7"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("access-log line missing %s:\n%s", want, line)
		}
	}
}

// The /metrics content-type satellite: the Prometheus text exposition
// content type, pinned at the handler level.
func TestMetricsContentType(t *testing.T) {
	col := obs.NewCollector()
	col.Count("x", 1)
	mux := NewMux(col)
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rw.Code)
	}
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if got := rw.Header().Get("Content-Type"); got != want {
		t.Fatalf("/metrics Content-Type = %q, want %q", got, want)
	}
}

// Flush must pass through the status-capturing wrapper so streaming
// handlers (pprof profiles, chunked job streams) keep working.
func TestStatusWriterFlushPassthrough(t *testing.T) {
	rw := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rw}
	var _ http.Flusher = sw
	if _, err := sw.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	sw.Flush()
	if !rw.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
	if sw.status != http.StatusOK || sw.bytes != 3 {
		t.Fatalf("statusWriter recorded status=%d bytes=%d", sw.status, sw.bytes)
	}
}
