// Package ops serves multiclust's live operational surface over a stdlib
// http.Server: Prometheus metrics from an obs.Collector, the span tree,
// the standard pprof debug endpoints, and a health probe. Both CLIs
// expose it behind a `-serve addr` flag so a long sweep can be profiled
// and watched while it runs.
//
// Endpoints:
//
//	/metrics        Collector.WriteProm output (text exposition format),
//	                byte-identical to the CLI's -metrics dump of the
//	                same state
//	/spans          the hierarchical span tree (Snapshot.WriteSpanTree)
//	/healthz        "ok" with process uptime
//	/debug/pprof/   index, profile, heap, goroutine, cmdline, symbol,
//	                trace — the net/http/pprof handler set
package ops

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"multiclust/internal/obs"
)

// NewMux routes the ops endpoints. col may be nil, in which case
// /metrics and /spans report 503 Service Unavailable (the pprof and
// health endpoints still work).
func NewMux(col *obs.Collector) *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime_s=%.0f\n", time.Since(start).Seconds())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if col == nil {
			http.Error(w, "no collector installed", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := col.WriteProm(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		if col == nil {
			http.Error(w, "no collector installed", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = col.Snapshot().WriteSpanTree(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewServer wraps the ops mux in an http.Server with conservative
// timeouts. WriteTimeout stays 0 because /debug/pprof/profile streams
// for its `seconds` parameter (30s default) and a write deadline would
// truncate the profile; slow-loris exposure is bounded by
// ReadHeaderTimeout and IdleTimeout instead.
func NewServer(addr string, col *obs.Collector) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           NewMux(col),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Handle is a running ops server; Shutdown stops it gracefully.
type Handle struct {
	URL string // http://host:port with the bound (possibly ephemeral) port
	srv *http.Server
	err chan error
}

// Serve binds addr (host:port; port 0 picks an ephemeral port) and
// serves the ops endpoints in a background goroutine until Shutdown.
func Serve(addr string, col *obs.Collector) (*Handle, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	h := &Handle{
		URL: "http://" + ln.Addr().String(),
		srv: NewServer(ln.Addr().String(), col),
		err: make(chan error, 1),
	}
	//lint:ignore nakedgo HTTP accept loop is I/O lifecycle, not compute; it never touches algorithm state, so the determinism contract is unaffected
	go func() { h.err <- h.srv.Serve(ln) }()
	return h, nil
}

// Shutdown stops accepting connections and waits (bounded by ctx) for
// in-flight requests, then reports any serve-loop error other than the
// expected http.ErrServerClosed.
func (h *Handle) Shutdown(ctx context.Context) error {
	if err := h.srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("ops: shutdown: %w", err)
	}
	if err := <-h.err; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("ops: serve: %w", err)
	}
	return nil
}
