// Package ops serves multiclust's live operational surface over a stdlib
// http.Server: Prometheus metrics from an obs.Collector, the span tree,
// the standard pprof debug endpoints, and a health probe. Both CLIs
// expose it behind a `-serve addr` flag so a long sweep can be profiled
// and watched while it runs.
//
// Endpoints:
//
//	/metrics        Collector.WriteProm output (text exposition format),
//	                byte-identical to the CLI's -metrics dump of the
//	                same state
//	/spans          the hierarchical span tree (Snapshot.WriteSpanTree)
//	/healthz        "ok" with process uptime — pure liveness: it stays
//	                200 for as long as the process can answer at all
//	/readyz         readiness: 200 when the optional Ready hook reports
//	                nil, 503 with the reason otherwise (job queue
//	                saturated, server draining); without a hook it
//	                mirrors liveness
//	/debug/pprof/   index, profile, heap, goroutine, cmdline, symbol,
//	                trace — the net/http/pprof handler set
//
// MuxOptions additionally mounts application handlers (the job engine's
// /v1/jobs API) on the same server, so one -serve flag exposes the whole
// operational surface.
package ops

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"multiclust/internal/obs"
)

// MuxOptions customizes the ops mux beyond the collector: a readiness
// hook for /readyz and extra application mounts.
type MuxOptions struct {
	// Ready backs /readyz: nil error (or a nil hook) means ready. A
	// non-nil error flips /readyz to 503 with the error text — the
	// signal load balancers use to stop routing new work here while
	// /healthz keeps reporting the process alive.
	Ready func() error
	// Mounts are extra handlers registered verbatim on the mux, keyed by
	// pattern (e.g. "/v1/jobs" and "/v1/jobs/"). Registration order is
	// irrelevant: net/http routes by pattern, not insertion.
	Mounts map[string]http.Handler
	// Log receives one http.request access-log line per request from the
	// Instrument middleware that NewServerOpts/ServeOpts wrap around the
	// mux. nil disables access logging (tracing and metrics still run).
	Log *obs.Logger
}

// NewMux routes the ops endpoints. col may be nil, in which case
// /metrics and /spans report 503 Service Unavailable (the pprof and
// health endpoints still work).
func NewMux(col *obs.Collector) *http.ServeMux {
	return NewMuxOpts(col, MuxOptions{})
}

// NewMuxOpts is NewMux plus a readiness hook and application mounts.
func NewMuxOpts(col *obs.Collector, opt MuxOptions) *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok uptime_s=%.0f\n", time.Since(start).Seconds())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opt.Ready != nil {
			if err := opt.Ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "not ready: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	for pattern, h := range opt.Mounts {
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if col == nil {
			http.Error(w, "no collector installed", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := col.WriteProm(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		if col == nil {
			http.Error(w, "no collector installed", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = col.Snapshot().WriteSpanTree(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewServer wraps the ops mux in an http.Server with conservative
// timeouts. WriteTimeout stays 0 because /debug/pprof/profile streams
// for its `seconds` parameter (30s default) and a write deadline would
// truncate the profile; slow-loris exposure is bounded by
// ReadHeaderTimeout and IdleTimeout instead.
func NewServer(addr string, col *obs.Collector) *http.Server {
	return NewServerOpts(addr, col, MuxOptions{})
}

// NewServerOpts is NewServer with a readiness hook and application
// mounts. The whole mux is wrapped in the Instrument middleware, so every
// request gets a trace id, a latency histogram observation and (with
// opt.Log set) an access-log line.
func NewServerOpts(addr string, col *obs.Collector, opt MuxOptions) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           Instrument(NewMuxOpts(col, opt), opt.Log),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Handle is a running ops server; Shutdown stops it gracefully.
type Handle struct {
	URL string // http://host:port with the bound (possibly ephemeral) port
	srv *http.Server
	err chan error
}

// Serve binds addr (host:port; port 0 picks an ephemeral port) and
// serves the ops endpoints in a background goroutine until Shutdown.
func Serve(addr string, col *obs.Collector) (*Handle, error) {
	return ServeOpts(addr, col, MuxOptions{})
}

// ServeOpts is Serve with a readiness hook and application mounts — how the
// CLI exposes the job engine's /v1/jobs API next to the ops endpoints.
func ServeOpts(addr string, col *obs.Collector, opt MuxOptions) (*Handle, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	h := &Handle{
		URL: "http://" + ln.Addr().String(),
		srv: NewServerOpts(ln.Addr().String(), col, opt),
		err: make(chan error, 1),
	}
	//lint:ignore nakedgo HTTP accept loop is I/O lifecycle, not compute; it never touches algorithm state, so the determinism contract is unaffected
	go func() { h.err <- h.srv.Serve(ln) }()
	return h, nil
}

// Shutdown stops accepting connections and waits (bounded by ctx) for
// in-flight requests, then reports any serve-loop error other than the
// expected http.ErrServerClosed.
func (h *Handle) Shutdown(ctx context.Context) error {
	if err := h.srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("ops: shutdown: %w", err)
	}
	if err := <-h.err; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("ops: serve: %w", err)
	}
	return nil
}
