package ops

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"multiclust/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// The acceptance contract: /metrics returns exactly the bytes
// Collector.WriteProm renders for the same state.
func TestServeMetricsMatchesWriteProm(t *testing.T) {
	col := obs.NewCollector()
	col.Count("kmeans.iterations", 12)
	col.Gauge("metaclust.mean_pairwise", 0.25)
	col.Observe("em.loglik", 0, -42.5)
	_, end := obs.SpanCtx(context.Background(), col, "kmeans.run")
	end()

	h, err := Serve("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := h.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	code, body := get(t, h.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", code)
	}
	var want strings.Builder
	if err := col.WriteProm(&want); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Errorf("/metrics differs from WriteProm:\n--- http ---\n%s--- direct ---\n%s", body, want.String())
	}
	if !strings.Contains(body, "multiclust_kmeans_iterations_total 12\n") {
		t.Errorf("/metrics missing expected line:\n%s", body)
	}
}

func TestServeSpansAndHealthz(t *testing.T) {
	col := obs.NewCollector()
	rctx, endRoot := obs.SpanCtx(context.Background(), col, "metaclust.run")
	_, end := obs.SpanCtx(rctx, col, "metaclust.generate")
	end()
	endRoot()

	h, err := Serve("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown(context.Background())

	code, body := get(t, h.URL+"/spans")
	if code != http.StatusOK {
		t.Fatalf("/spans status = %d, want 200", code)
	}
	if !strings.Contains(body, "metaclust.run count=1") ||
		!strings.Contains(body, "  metaclust.generate count=1") {
		t.Errorf("/spans missing indented tree:\n%s", body)
	}

	code, body = get(t, h.URL+"/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok uptime_s=") {
		t.Errorf("/healthz = %d %q", code, body)
	}
}

func TestServePprofEndpoints(t *testing.T) {
	h, err := Serve("127.0.0.1:0", obs.NewCollector())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown(context.Background())

	code, body := get(t, h.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, want 200 with profile index", code)
	}
	code, body = get(t, h.URL+"/debug/pprof/heap?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "heap profile") {
		t.Errorf("/debug/pprof/heap?debug=1 = %d, body %.60q", code, body)
	}
}

func TestNilCollectorReturns503(t *testing.T) {
	h, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown(context.Background())
	for _, path := range []string{"/metrics", "/spans"} {
		if code, _ := get(t, h.URL+path); code != http.StatusServiceUnavailable {
			t.Errorf("%s with nil collector = %d, want 503", path, code)
		}
	}
	if code, _ := get(t, h.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz must stay healthy without a collector, got %d", code)
	}
}

func TestServeRejectsBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", nil); err == nil {
		t.Fatal("Serve on an invalid address must error")
	}
}

func TestReadyzWithoutHookMirrorsLiveness(t *testing.T) {
	h, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown(context.Background())
	if code, body := get(t, h.URL+"/readyz"); code != http.StatusOK || !strings.HasPrefix(body, "ready") {
		t.Errorf("/readyz without hook = %d %q, want 200 ready", code, body)
	}
}

func TestReadyzReportsNotReady(t *testing.T) {
	// The hook is consulted per request, so readiness can flip live — the
	// saturated-queue / draining signal the job engine feeds it.
	ready := make(chan error, 1)
	ready <- nil
	hook := func() error {
		err := <-ready
		ready <- err
		return err
	}
	h, err := ServeOpts("127.0.0.1:0", nil, MuxOptions{Ready: hook})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown(context.Background())

	if code, body := get(t, h.URL+"/readyz"); code != http.StatusOK || !strings.HasPrefix(body, "ready") {
		t.Fatalf("/readyz while ready = %d %q", code, body)
	}
	<-ready
	ready <- errTestSaturated
	code, body := get(t, h.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while saturated = %d, want 503", code)
	}
	if !strings.Contains(body, "queue saturated") {
		t.Fatalf("/readyz body %q missing the reason", body)
	}
	// Liveness is unaffected: /healthz keeps answering 200.
	if code, _ := get(t, h.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during saturation = %d, want 200", code)
	}
}

var errTestSaturated = errTest("queue saturated")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestMountsServeApplicationHandlers(t *testing.T) {
	mounted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "mounted:"+r.URL.Path)
	})
	h, err := ServeOpts("127.0.0.1:0", nil, MuxOptions{Mounts: map[string]http.Handler{
		"/v1/jobs":  mounted,
		"/v1/jobs/": mounted,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown(context.Background())

	for _, path := range []string{"/v1/jobs", "/v1/jobs/j-1"} {
		code, body := get(t, h.URL+path)
		if code != http.StatusTeapot || !strings.HasPrefix(body, "mounted:") {
			t.Errorf("%s = %d %q, want the mounted handler", path, code, body)
		}
	}
	// The ops endpoints still work next to the mounts.
	if code, _ := get(t, h.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz with mounts = %d", code)
	}
}
