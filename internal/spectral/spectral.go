// Package spectral implements normalized spectral clustering
// (Ng, Jordan & Weiss 2001): an RBF affinity matrix, the normalized
// affinity D^{-1/2} W D^{-1/2}, its top-k eigenvectors as an embedding, and
// k-means on the row-normalized embedding. It is the base learner of the
// mSC multiple-non-redundant-views method (Niu & Dy 2010) and the two-view
// spectral approach (de Sa 2005).
package spectral

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/kmeans"
	"multiclust/internal/linalg"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// Config controls a spectral clustering run.
type Config struct {
	K     int
	Sigma float64 // RBF bandwidth; <=0 selects the median pairwise distance
	Seed  int64
}

// Result carries the clustering and the spectral embedding.
type Result struct {
	Clustering *core.Clustering
	Embedding  *linalg.Matrix // n × k row-normalized eigenvector matrix
	Sigma      float64        // bandwidth actually used
}

// RBFAffinity builds the n×n Gaussian affinity matrix with the given sigma
// (auto-selected as the median pairwise distance when sigma <= 0). Diagonal
// entries are zero, following Ng et al.
func RBFAffinity(points [][]float64, sigma float64) (*linalg.Matrix, float64) {
	n := len(points)
	pd := dist.PairwiseMatrix(points, dist.Euclidean)
	if sigma <= 0 {
		var ds []float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				ds = append(ds, pd.At(i, j))
			}
		}
		sigma = median(ds)
		if sigma <= 0 {
			sigma = 1
		}
	}
	w := linalg.NewMatrix(n, n)
	inv := 1 / (2 * sigma * sigma)
	// Each row's kernel evaluations are independent; rows write disjoint
	// slices of the matrix, so the result matches the serial loop exactly.
	parallel.For(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				d := pd.At(i, j)
				w.Set(i, j, math.Exp(-d*d*inv))
			}
		}
	})
	return w, sigma
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// NormalizedAffinity returns D^{-1/2} W D^{-1/2}; its top-k eigenvectors
// span the same space as the bottom-k of the normalized Laplacian.
func NormalizedAffinity(w *linalg.Matrix) *linalg.Matrix {
	n := w.Rows
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += w.At(i, j)
		}
		if s > 0 {
			dinv[i] = 1 / math.Sqrt(s)
		}
	}
	out := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, dinv[i]*w.At(i, j)*dinv[j])
		}
	}
	return out
}

// Embed computes the row-normalized top-k eigenvector embedding of the
// normalized affinity.
func Embed(w *linalg.Matrix, k int) (*linalg.Matrix, error) {
	return EmbedContext(context.Background(), w, k)
}

// EmbedContext is Embed with cancellation: the eigensolve polls ctx at each
// Jacobi sweep. On interruption the partially-converged embedding is still
// returned (row-normalized, finite) alongside an error wrapping
// core.ErrInterrupted.
func EmbedContext(ctx context.Context, w *linalg.Matrix, k int) (*linalg.Matrix, error) {
	if k <= 0 || k > w.Rows {
		return nil, fmt.Errorf("spectral: invalid embedding dimension %d: %w", k, core.ErrInvalidInput)
	}
	na := NormalizedAffinity(w)
	// Symmetrize against numerical asymmetry before eigensolving.
	for i := 0; i < na.Rows; i++ {
		for j := i + 1; j < na.Cols; j++ {
			avg := 0.5 * (na.At(i, j) + na.At(j, i))
			na.Set(i, j, avg)
			na.Set(j, i, avg)
		}
	}
	e, err := linalg.SymEigenContext(ctx, na)
	if e == nil {
		return nil, err
	}
	n := w.Rows
	emb := linalg.NewMatrix(n, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			emb.Set(i, j, e.Vectors.At(i, j))
		}
	}
	for i := 0; i < n; i++ {
		linalg.Normalize(emb.Row(i))
	}
	return emb, err
}

// Run performs the full spectral clustering pipeline on points.
func Run(points [][]float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), points, cfg)
}

// RunContext is Run with cancellation, threaded through the eigensolve and
// the k-means stage. On interruption it returns a structurally valid
// best-so-far result wrapped in core.ErrInterrupted; with a background
// context the output is byte-identical to Run.
func RunContext(ctx context.Context, points [][]float64, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 || cfg.K > len(points) {
		return nil, errors.New("spectral: invalid K")
	}
	w, sigma := RBFAffinity(points, cfg.Sigma)
	return RunAffinityContext(ctx, w, cfg.K, cfg.Seed, sigma)
}

// RunAffinity performs spectral clustering on a precomputed affinity matrix.
// mSC calls this with penalized affinities.
func RunAffinity(w *linalg.Matrix, k int, seed int64, sigma float64) (*Result, error) {
	return RunAffinityContext(context.Background(), w, k, seed, sigma)
}

// RunAffinityContext is RunAffinity with cancellation; see RunContext.
func RunAffinityContext(ctx context.Context, w *linalg.Matrix, k int, seed int64, sigma float64) (*Result, error) {
	rec := obs.From(ctx)
	ctx, endSpan := obs.SpanCtx(ctx, rec, "spectral.run")
	defer endSpan()
	obs.Count(rec, "spectral.embeddings", 1)
	emb, eerr := EmbedContext(ctx, w, k)
	if emb == nil {
		return nil, eerr
	}
	rows := make([][]float64, emb.Rows)
	for i := range rows {
		rows[i] = emb.Row(i)
	}
	// An already-cancelled context still completes one full k-means
	// assignment pass, so the labels below are always valid.
	km, kerr := kmeans.RunContext(ctx, rows, kmeans.Config{K: k, Seed: seed, Restarts: 5})
	if km == nil {
		return nil, kerr
	}
	res := &Result{Clustering: km.Clustering, Embedding: emb, Sigma: sigma}
	if eerr != nil || kerr != nil {
		return res, fmt.Errorf("spectral: interrupted: %w", core.ErrInterrupted)
	}
	return res, nil
}
