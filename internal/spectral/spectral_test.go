package spectral

import (
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

func TestRunBlobs(t *testing.T) {
	ds, truth := dataset.GaussianBlobs(1, 90, [][]float64{{0, 0}, {6, 0}, {0, 6}}, 0.4)
	res, err := Run(ds.Points, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRand(truth, res.Clustering.Labels); ari < 0.9 {
		t.Errorf("ARI = %v", ari)
	}
	if res.Sigma <= 0 {
		t.Error("auto sigma not set")
	}
}

func TestRunRing(t *testing.T) {
	// Non-convex structure: spectral clustering separates ring from blob
	// where k-means cannot.
	ds, truth := dataset.RingAndBlob(2, 120, 60)
	res, err := Run(ds.Points, Config{K: 2, Seed: 1, Sigma: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRand(truth, res.Clustering.Labels); ari < 0.9 {
		t.Errorf("ring ARI = %v", ari)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, Config{K: 2}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Run([][]float64{{0}}, Config{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Run([][]float64{{0}}, Config{K: 5}); err == nil {
		t.Error("K>n should fail")
	}
}

func TestRBFAffinityProperties(t *testing.T) {
	pts := [][]float64{{0, 0}, {0.1, 0}, {5, 5}}
	w, sigma := RBFAffinity(pts, 1)
	if sigma != 1 {
		t.Errorf("sigma = %v", sigma)
	}
	if w.At(0, 0) != 0 {
		t.Error("diagonal must be zero")
	}
	if w.At(0, 1) <= w.At(0, 2) {
		t.Error("closer points must have higher affinity")
	}
	if w.At(0, 1) != w.At(1, 0) {
		t.Error("affinity must be symmetric")
	}
}

func TestEmbedErrors(t *testing.T) {
	w, _ := RBFAffinity([][]float64{{0}, {1}}, 1)
	if _, err := Embed(w, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Embed(w, 3); err == nil {
		t.Error("k>n should fail")
	}
}

func TestEmbedRowsUnitNorm(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(3, 40, [][]float64{{0, 0}, {5, 5}}, 0.3)
	w, _ := RBFAffinity(ds.Points, 0)
	emb, err := Embed(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < emb.Rows; i++ {
		var n float64
		for j := 0; j < emb.Cols; j++ {
			n += emb.At(i, j) * emb.At(i, j)
		}
		if n > 1+1e-9 || n < 1-1e-9 {
			t.Fatalf("row %d norm^2 = %v", i, n)
		}
	}
}
