package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"multiclust/internal/linalg"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasicDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if Euclidean(a, b) != 5 {
		t.Errorf("Euclidean = %v", Euclidean(a, b))
	}
	if SqEuclidean(a, b) != 25 {
		t.Errorf("SqEuclidean = %v", SqEuclidean(a, b))
	}
	if Manhattan(a, b) != 7 {
		t.Errorf("Manhattan = %v", Manhattan(a, b))
	}
	if Chebyshev(a, b) != 4 {
		t.Errorf("Chebyshev = %v", Chebyshev(a, b))
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{2, 0}); !approxEq(got, 0, 1e-12) {
		t.Errorf("parallel cosine distance = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 3}); !approxEq(got, 1, 1e-12) {
		t.Errorf("orthogonal cosine distance = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 1 {
		t.Errorf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestSubspace(t *testing.T) {
	a := []float64{0, 100, 0}
	b := []float64{3, -100, 4}
	d := Subspace([]int{0, 2}, Euclidean)
	if got := d(a, b); !approxEq(got, 5, 1e-12) {
		t.Errorf("subspace distance = %v, want 5", got)
	}
	if got := EuclideanSubspace(a, b, []int{0, 2}); !approxEq(got, 5, 1e-12) {
		t.Errorf("EuclideanSubspace = %v", got)
	}
	if got := SqEuclideanSubspace(a, b, []int{1}); got != 200*200 {
		t.Errorf("SqEuclideanSubspace = %v", got)
	}
}

func TestWeighted(t *testing.T) {
	d := Weighted([]float64{1, 0})
	if got := d([]float64{0, 5}, []float64{3, 100}); !approxEq(got, 3, 1e-12) {
		t.Errorf("weighted = %v, want 3 (second dim zeroed)", got)
	}
}

func TestMahalanobisIdentityIsEuclidean(t *testing.T) {
	d := Mahalanobis(linalg.Identity(2))
	if got := d([]float64{0, 0}, []float64{3, 4}); !approxEq(got, 5, 1e-12) {
		t.Errorf("Mahalanobis(I) = %v, want 5", got)
	}
}

func TestTransformed(t *testing.T) {
	// Scaling x by 2 doubles distances along x.
	m, _ := linalg.FromRows([][]float64{{2, 0}, {0, 1}})
	d := Transformed(m, Euclidean)
	if got := d([]float64{0, 0}, []float64{1, 0}); !approxEq(got, 2, 1e-12) {
		t.Errorf("transformed = %v, want 2", got)
	}
}

func TestPairwiseMatrix(t *testing.T) {
	pts := [][]float64{{0, 0}, {3, 4}, {0, 1}}
	m := PairwiseMatrix(pts, Euclidean)
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 {
		t.Errorf("pairwise not symmetric/correct: %v", m)
	}
	if m.At(2, 2) != 0 {
		t.Error("diagonal must be 0")
	}
}

// Property: metric axioms (symmetry, identity, triangle) for Euclidean and
// Manhattan on random vectors.
func TestQuickMetricAxioms(t *testing.T) {
	for name, d := range map[string]Func{"euclidean": Euclidean, "manhattan": Manhattan, "chebyshev": Chebyshev} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			n := 1 + r.Intn(6)
			vecs := make([][]float64, 3)
			for i := range vecs {
				vecs[i] = make([]float64, n)
				for j := range vecs[i] {
					vecs[i][j] = r.NormFloat64()
				}
			}
			a, b, c := vecs[0], vecs[1], vecs[2]
			if !approxEq(d(a, b), d(b, a), 1e-12) {
				return false
			}
			if d(a, a) != 0 {
				return false
			}
			return d(a, c) <= d(a, b)+d(b, c)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Weighted is the ROOTED weighted Euclidean metric: its square must equal
// the weighted sum of squared coordinate differences.
func TestWeightedSquaredPinsDefinition(t *testing.T) {
	w := []float64{2, 0.5, 3}
	a := []float64{1, -2, 0.25}
	b := []float64{-1, 4, 2}
	d := Weighted(w)(a, b)
	var want float64
	for i := range a {
		diff := a[i] - b[i]
		want += w[i] * diff * diff
	}
	if got := d * d; !approxEq(got, want, 1e-12) {
		t.Errorf("Weighted(w)(a,b)^2 = %v, want sum w_i (a_i-b_i)^2 = %v", got, want)
	}
	// And the rooted form obeys symmetry + identity like the other metrics.
	if got := Weighted(w)(a, a); got != 0 {
		t.Errorf("Weighted(a,a) = %v", got)
	}
	if !approxEq(Weighted(w)(a, b), Weighted(w)(b, a), 1e-12) {
		t.Error("Weighted not symmetric")
	}
}

// The parallel pairwise matrix must be byte-identical to the serial one for
// every worker count.
func TestPairwiseMatrixWorkersDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	pts := make([][]float64, 61)
	for i := range pts {
		pts[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	}
	serial := PairwiseMatrixWorkers(pts, Euclidean, 1)
	for _, w := range []int{2, 4, 7} {
		par := PairwiseMatrixWorkers(pts, Euclidean, w)
		for i := range serial.Data {
			if serial.Data[i] != par.Data[i] {
				t.Fatalf("workers=%d: cell %d differs: %v vs %v", w, i, serial.Data[i], par.Data[i])
			}
		}
	}
}
