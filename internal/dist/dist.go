// Package dist provides the distance functions used across paradigms,
// including the subspace-restricted Euclidean distance central to the
// subspace clustering section of the tutorial (slide 67):
//
//	dist_S(o, p) = sqrt( sum_{i in S} (o_i - p_i)^2 )
package dist

import (
	"math"

	"multiclust/internal/linalg"
	"multiclust/internal/parallel"
)

// Func is a distance between two equal-length vectors.
type Func func(a, b []float64) float64

// Euclidean returns the L2 distance.
func Euclidean(a, b []float64) float64 { return math.Sqrt(SqEuclidean(a, b)) }

// SqEuclidean returns the squared L2 distance.
func SqEuclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Manhattan returns the L1 distance.
func Manhattan(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Chebyshev returns the L∞ distance.
func Chebyshev(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Cosine returns 1 - cosine similarity; zero vectors are at distance 1 from
// everything (including each other), keeping the function total.
func Cosine(a, b []float64) float64 {
	na, nb := linalg.Norm(a), linalg.Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - linalg.Dot(a, b)/(na*nb)
}

// Subspace restricts base to the given dimensions.
func Subspace(dims []int, base Func) Func {
	return func(a, b []float64) float64 {
		pa := make([]float64, len(dims))
		pb := make([]float64, len(dims))
		for i, d := range dims {
			pa[i] = a[d]
			pb[i] = b[d]
		}
		return base(pa, pb)
	}
}

// SqEuclideanSubspace is the common special case of Subspace(dims,
// SqEuclidean) without the projection copies.
func SqEuclideanSubspace(a, b []float64, dims []int) float64 {
	var s float64
	for _, d := range dims {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// EuclideanSubspace is sqrt of SqEuclideanSubspace.
func EuclideanSubspace(a, b []float64, dims []int) float64 {
	return math.Sqrt(SqEuclideanSubspace(a, b, dims))
}

// Weighted returns the weighted Euclidean distance with per-dimension
// weights w: sqrt(sum_i w_i (a_i - b_i)^2). It is a metric for non-negative
// weights; square the result to recover the weighted squared form.
func Weighted(w []float64) Func {
	return func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += w[i] * d * d
		}
		return math.Sqrt(s)
	}
}

// Mahalanobis returns x ↦ sqrt((a-b)^T B (a-b)) for a positive semi-definite
// matrix B = M^T M; this is the ||·||_B norm of Qi & Davidson (2009,
// tutorial slide 54). Negative quadratic forms from numerical noise are
// clamped to zero.
func Mahalanobis(b *linalg.Matrix) Func {
	return func(x, y []float64) float64 {
		diff := linalg.SubVec(x, y)
		q := linalg.Dot(diff, b.MulVec(diff))
		if q < 0 {
			q = 0
		}
		return math.Sqrt(q)
	}
}

// Transformed returns the base distance measured after applying the linear
// map m to both arguments — distance in the transformed space of the
// orthogonal-transformation paradigm (tutorial section 3).
func Transformed(m *linalg.Matrix, base Func) Func {
	return func(a, b []float64) float64 {
		return base(m.MulVec(a), m.MulVec(b))
	}
}

// PairwiseMatrix materializes the n×n distance matrix of points under d,
// using the library-wide worker resolution (see internal/parallel).
func PairwiseMatrix(points [][]float64, d Func) *linalg.Matrix {
	return PairwiseMatrixWorkers(points, d, 0)
}

// PairwiseMatrixWorkers is PairwiseMatrix with an explicit worker count
// (<= 0 resolves via the parallel package). Rows are distributed through an
// atomic cursor because the upper-triangle loop is triangular: row i holds
// n-1-i distance evaluations, so static blocks would leave the first worker
// with most of the work. Each (i, j) cell is written exactly once, making
// the output byte-identical for every worker count.
func PairwiseMatrixWorkers(points [][]float64, d Func, workers int) *linalg.Matrix {
	n := len(points)
	out := linalg.NewMatrix(n, n)
	parallel.Each(n, workers, func(i int) {
		for j := i + 1; j < n; j++ {
			v := d(points[i], points[j])
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	})
	return out
}
