// Package core defines the shared vocabulary of the module: clusterings as
// label vectors, subspace clusters as (object set, dimension set) pairs, and
// the abstract quality/dissimilarity function types from the tutorial's
// problem definition (slide 27):
//
//	detect clusterings Clust_1..Clust_m such that Q(Clust_i) is high for all
//	i and Diss(Clust_i, Clust_j) is high for all i != j.
package core

import (
	"errors"
	"fmt"
	"sort"
)

// Noise is the label assigned to objects that belong to no cluster.
const Noise = -1

// Clustering is a flat partition (or partial partition) of n objects given
// as a label per object; label Noise marks unclustered objects. Labels need
// not be contiguous.
type Clustering struct {
	Labels []int
}

// NewClustering wraps a label vector (no copy).
func NewClustering(labels []int) *Clustering { return &Clustering{Labels: labels} }

// N returns the number of objects.
func (c *Clustering) N() int { return len(c.Labels) }

// K returns the number of distinct non-noise clusters.
func (c *Clustering) K() int {
	seen := map[int]bool{}
	for _, l := range c.Labels {
		if l >= 0 {
			seen[l] = true
		}
	}
	return len(seen)
}

// Clusters returns the member indices of each non-noise cluster, keyed by
// ascending original label.
func (c *Clustering) Clusters() [][]int {
	byLabel := map[int][]int{}
	for i, l := range c.Labels {
		if l >= 0 {
			byLabel[l] = append(byLabel[l], i)
		}
	}
	labels := make([]int, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	out := make([][]int, len(labels))
	for i, l := range labels {
		out[i] = byLabel[l]
	}
	return out
}

// NoiseCount returns the number of objects labelled Noise.
func (c *Clustering) NoiseCount() int {
	n := 0
	for _, l := range c.Labels {
		if l < 0 {
			n++
		}
	}
	return n
}

// Relabel returns a copy whose cluster labels are renumbered 0..K-1 in order
// of first appearance. Noise stays Noise.
func (c *Clustering) Relabel() *Clustering {
	next := 0
	mapping := map[int]int{}
	out := make([]int, len(c.Labels))
	for i, l := range c.Labels {
		if l < 0 {
			out[i] = Noise
			continue
		}
		m, ok := mapping[l]
		if !ok {
			m = next
			mapping[l] = m
			next++
		}
		out[i] = m
	}
	return NewClustering(out)
}

// Validate checks structural sanity against an expected object count.
func (c *Clustering) Validate(n int) error {
	if len(c.Labels) != n {
		return fmt.Errorf("core: clustering covers %d objects, dataset has %d", len(c.Labels), n)
	}
	return nil
}

// Clone returns a deep copy.
func (c *Clustering) Clone() *Clustering {
	return NewClustering(append([]int(nil), c.Labels...))
}

// FromClusters builds a Clustering of n objects from explicit member lists.
// Objects in no list become Noise; an object in two lists is an error.
func FromClusters(n int, clusters [][]int) (*Clustering, error) {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	for ci, members := range clusters {
		for _, o := range members {
			if o < 0 || o >= n {
				return nil, fmt.Errorf("core: object index %d out of range [0,%d)", o, n)
			}
			if labels[o] != Noise {
				return nil, fmt.Errorf("core: object %d assigned to clusters %d and %d", o, labels[o], ci)
			}
			labels[o] = ci
		}
	}
	return NewClustering(labels), nil
}

// SubspaceCluster is a set of objects grouped within a subset of the
// dimensions — the (O, S) pair of the subspace clustering paradigm
// (tutorial slide 65).
type SubspaceCluster struct {
	Objects []int // ascending object indices
	Dims    []int // ascending dimension indices
}

// NewSubspaceCluster copies and sorts the given index sets.
func NewSubspaceCluster(objects, dims []int) SubspaceCluster {
	o := append([]int(nil), objects...)
	d := append([]int(nil), dims...)
	sort.Ints(o)
	sort.Ints(d)
	return SubspaceCluster{Objects: o, Dims: d}
}

// Dimensionality returns |S|.
func (sc SubspaceCluster) Dimensionality() int { return len(sc.Dims) }

// Size returns |O|.
func (sc SubspaceCluster) Size() int { return len(sc.Objects) }

// SharedDims returns the number of dimensions shared with other.
func (sc SubspaceCluster) SharedDims(other SubspaceCluster) int {
	return intersectionSize(sc.Dims, other.Dims)
}

// SharedObjects returns the number of objects shared with other.
func (sc SubspaceCluster) SharedObjects(other SubspaceCluster) int {
	return intersectionSize(sc.Objects, other.Objects)
}

// String renders the cluster compactly.
func (sc SubspaceCluster) String() string {
	return fmt.Sprintf("(|O|=%d, S=%v)", len(sc.Objects), sc.Dims)
}

// intersectionSize counts common elements of two ascending-sorted slices.
func intersectionSize(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// SubspaceClustering is a result set M of subspace clusters.
type SubspaceClustering []SubspaceCluster

// TotalObjects returns the number of distinct objects covered by any cluster.
func (m SubspaceClustering) TotalObjects() int {
	seen := map[int]bool{}
	for _, c := range m {
		for _, o := range c.Objects {
			seen[o] = true
		}
	}
	return len(seen)
}

// GroupBySubspace partitions the result by identical dimension sets; the
// tutorial's "awareness of different clusterings" challenge (slide 92) is
// exactly recovering these groups.
func (m SubspaceClustering) GroupBySubspace() map[string][]SubspaceCluster {
	out := map[string][]SubspaceCluster{}
	for _, c := range m {
		key := fmt.Sprint(c.Dims)
		out[key] = append(out[key], c)
	}
	return out
}

// QualityFunc scores a clustering of the given data; higher is better.
type QualityFunc func(points [][]float64, c *Clustering) float64

// DissimilarityFunc scores how different two clusterings are; higher means
// more different.
type DissimilarityFunc func(a, b *Clustering) float64

// MultiResult is a set of clustering solutions over one database, the output
// shape shared by every paradigm in the module.
type MultiResult struct {
	Clusterings []*Clustering
	// Views optionally records, per clustering, the dimensions or the
	// transformation it was found in (nil when the original space was used).
	Views [][]int
}

// NewMultiResult bundles solutions (views default to nil).
func NewMultiResult(clusterings ...*Clustering) *MultiResult {
	return &MultiResult{Clusterings: clusterings}
}

// PairwiseDissimilarity evaluates Diss on every solution pair and returns
// the mean — the second half of the tutorial's twin objective (slide 27).
func (m *MultiResult) PairwiseDissimilarity(diss DissimilarityFunc) float64 {
	if len(m.Clusterings) < 2 {
		return 0
	}
	var sum float64
	var cnt int
	for i := 0; i < len(m.Clusterings); i++ {
		for j := i + 1; j < len(m.Clusterings); j++ {
			sum += diss(m.Clusterings[i], m.Clusterings[j])
			cnt++
		}
	}
	return sum / float64(cnt)
}

// TotalQuality sums Q over the solutions — the first half of the twin
// objective.
func (m *MultiResult) TotalQuality(points [][]float64, q QualityFunc) float64 {
	var sum float64
	for _, c := range m.Clusterings {
		sum += q(points, c)
	}
	return sum
}

// ErrEmptyDataset is returned by algorithms invoked on no data.
var ErrEmptyDataset = errors.New("core: empty dataset")

// Typed error taxonomy of the fault-tolerant execution layer (see
// internal/robust and DESIGN.md "Failure semantics & cancellation"). The
// sentinels live here, at the bottom of the import graph, so every layer —
// stats, metrics, the algorithm packages, the facade — can wrap them without
// import cycles. Callers match with errors.Is.
var (
	// ErrInvalidInput marks data an algorithm cannot meaningfully process:
	// NaN or Inf coordinates, zero-dimensional points, nil required inputs.
	ErrInvalidInput = errors.New("core: invalid input")

	// ErrShape marks structurally inconsistent inputs: ragged rows,
	// label vectors whose length disagrees with the dataset, distribution
	// vectors of unequal length.
	ErrShape = errors.New("core: shape mismatch")

	// ErrInterrupted marks a run cut short by context cancellation or
	// deadline expiry. Algorithms wrap it around their best-so-far result:
	// the returned value (when non-nil) is structurally valid but reflects
	// fewer iterations than requested.
	ErrInterrupted = errors.New("core: interrupted")

	// ErrDegenerate marks a run that completed but produced an unusable
	// result (singular covariance, non-converged eigensolve). robust.Retry
	// re-runs such outcomes on a deterministic seed schedule.
	ErrDegenerate = errors.New("core: degenerate result")

	// ErrPanic marks a panic captured at the facade boundary and converted
	// into an error; no exported multiclust call panics.
	ErrPanic = errors.New("core: recovered panic")
)
