package core

import (
	"testing"
	"testing/quick"
)

func TestClusteringBasics(t *testing.T) {
	c := NewClustering([]int{0, 0, 2, 2, Noise, 5})
	if c.N() != 6 {
		t.Errorf("N = %d", c.N())
	}
	if c.K() != 3 {
		t.Errorf("K = %d, want 3", c.K())
	}
	if c.NoiseCount() != 1 {
		t.Errorf("NoiseCount = %d", c.NoiseCount())
	}
	cl := c.Clusters()
	if len(cl) != 3 {
		t.Fatalf("Clusters len = %d", len(cl))
	}
	if cl[0][0] != 0 || cl[0][1] != 1 {
		t.Errorf("cluster 0 = %v", cl[0])
	}
	if cl[2][0] != 5 {
		t.Errorf("cluster for label 5 = %v", cl[2])
	}
}

func TestRelabel(t *testing.T) {
	c := NewClustering([]int{7, 7, 3, Noise, 3, 9})
	r := c.Relabel()
	want := []int{0, 0, 1, Noise, 1, 2}
	for i, l := range r.Labels {
		if l != want[i] {
			t.Fatalf("Relabel = %v, want %v", r.Labels, want)
		}
	}
	// Original untouched.
	if c.Labels[0] != 7 {
		t.Error("Relabel mutated the receiver")
	}
}

func TestValidateAndClone(t *testing.T) {
	c := NewClustering([]int{0, 1})
	if err := c.Validate(2); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := c.Validate(3); err == nil {
		t.Error("Validate should fail on wrong n")
	}
	cl := c.Clone()
	cl.Labels[0] = 9
	if c.Labels[0] == 9 {
		t.Error("Clone aliases the receiver")
	}
}

func TestFromClusters(t *testing.T) {
	c, err := FromClusters(5, [][]int{{0, 1}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Labels[0] != 0 || c.Labels[3] != 1 || c.Labels[2] != Noise || c.Labels[4] != Noise {
		t.Errorf("labels = %v", c.Labels)
	}
	if _, err := FromClusters(2, [][]int{{0}, {0}}); err == nil {
		t.Error("overlapping clusters should fail")
	}
	if _, err := FromClusters(2, [][]int{{5}}); err == nil {
		t.Error("out-of-range object should fail")
	}
}

func TestSubspaceCluster(t *testing.T) {
	a := NewSubspaceCluster([]int{3, 1, 2}, []int{2, 0})
	if a.Objects[0] != 1 || a.Dims[0] != 0 {
		t.Error("NewSubspaceCluster should sort indices")
	}
	if a.Size() != 3 || a.Dimensionality() != 2 {
		t.Errorf("size/dim = %d/%d", a.Size(), a.Dimensionality())
	}
	b := NewSubspaceCluster([]int{2, 3, 9}, []int{0, 5})
	if got := a.SharedObjects(b); got != 2 {
		t.Errorf("SharedObjects = %d, want 2", got)
	}
	if got := a.SharedDims(b); got != 1 {
		t.Errorf("SharedDims = %d, want 1", got)
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}

func TestSubspaceClusteringGrouping(t *testing.T) {
	m := SubspaceClustering{
		NewSubspaceCluster([]int{0, 1}, []int{0, 1}),
		NewSubspaceCluster([]int{2, 3}, []int{0, 1}),
		NewSubspaceCluster([]int{0, 2}, []int{2}),
	}
	if m.TotalObjects() != 4 {
		t.Errorf("TotalObjects = %d", m.TotalObjects())
	}
	groups := m.GroupBySubspace()
	if len(groups) != 2 {
		t.Errorf("groups = %d, want 2", len(groups))
	}
}

// Property: Relabel preserves the partition structure (same co-membership).
func TestQuickRelabelPreservesPartition(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		labels := make([]int, len(raw))
		for i, v := range raw {
			labels[i] = int(v%5) - 1 // includes Noise
		}
		c := NewClustering(labels)
		r := c.Relabel()
		for i := range labels {
			for j := i + 1; j < len(labels); j++ {
				same := labels[i] == labels[j] && labels[i] >= 0
				sameR := r.Labels[i] == r.Labels[j] && r.Labels[i] >= 0
				if same != sameR {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: intersectionSize is symmetric and bounded by min length.
func TestQuickIntersection(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := dedupSorted(a)
		sb := dedupSorted(b)
		x := NewSubspaceCluster(sa, sa)
		y := NewSubspaceCluster(sb, sb)
		n := x.SharedObjects(y)
		if n != y.SharedObjects(x) {
			return false
		}
		minLen := len(sa)
		if len(sb) < minLen {
			minLen = len(sb)
		}
		return n <= minLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func dedupSorted(v []uint8) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range v {
		if !seen[int(x)] {
			seen[int(x)] = true
			out = append(out, int(x))
		}
	}
	return out
}

func TestMultiResultTwinObjective(t *testing.T) {
	pts := [][]float64{{0, 0}, {0, 1}, {10, 0}, {10, 1}}
	byX := NewClustering([]int{0, 0, 1, 1})
	byY := NewClustering([]int{0, 1, 0, 1})
	m := NewMultiResult(byX, byY)
	diss := func(a, b *Clustering) float64 {
		same := 0
		for i := range a.Labels {
			if (a.Labels[i] == a.Labels[0]) == (b.Labels[i] == b.Labels[0]) {
				same++
			}
		}
		return 1 - float64(same)/float64(len(a.Labels))
	}
	if d := m.PairwiseDissimilarity(diss); d <= 0 {
		t.Errorf("pairwise dissimilarity = %v", d)
	}
	single := NewMultiResult(byX)
	if d := single.PairwiseDissimilarity(diss); d != 0 {
		t.Errorf("single-solution dissimilarity = %v", d)
	}
	q := func(points [][]float64, c *Clustering) float64 { return float64(c.K()) }
	if got := m.TotalQuality(pts, q); got != 4 {
		t.Errorf("total quality = %v, want 4", got)
	}
}
