// Package orthogonal implements the space-transformation paradigm of the
// tutorial's section 3: learn a transformation from the known clustering and
// re-cluster the transformed database, so dissimilarity is ensured
// implicitly by the transformation and any clustering algorithm can be
// plugged in (slide 48). Three methods are provided:
//
//   - MetricFlip — Davidson & Qi (2008): learn a metric that makes the given
//     clustering easy, SVD it, invert the stretch.
//   - AlternativeTransform — Qi & Davidson (2009): the closed-form
//     M = Sigma~^{-1/2} from a constrained KL-preservation problem.
//   - OrthogonalProjections — Cui, Fern & Dy (2007): iteratively project
//     onto the orthogonal complement of the clustering's mean subspace.
package orthogonal

import (
	"errors"
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/kmeans"
	"multiclust/internal/linalg"
)

// Base is the pluggable clustering step used after each transformation. It
// receives the transformed points and must return a flat clustering.
type Base func(points [][]float64) (*core.Clustering, error)

// KMeansBase adapts k-means as the default base learner.
func KMeansBase(k int, seed int64) Base {
	return func(points [][]float64) (*core.Clustering, error) {
		res, err := kmeans.Run(points, kmeans.Config{K: k, Seed: seed, Restarts: 5})
		if err != nil {
			return nil, err
		}
		return res.Clustering, nil
	}
}

// clusterMeans returns the mean vector of every non-noise cluster.
func clusterMeans(points [][]float64, c *core.Clustering) [][]float64 {
	var means [][]float64
	for _, members := range c.Clusters() {
		if len(members) == 0 {
			continue
		}
		mean := make([]float64, len(points[0]))
		for _, o := range members {
			linalg.Axpy(1, points[o], mean)
		}
		linalg.ScaleVec(1/float64(len(members)), mean)
		means = append(means, mean)
	}
	return means
}

// withinClusterScatter returns the pooled within-cluster scatter matrix
// sum_c sum_{x in c} (x - mean_c)(x - mean_c)^T / n, regularized with eps on
// the diagonal.
func withinClusterScatter(points [][]float64, c *core.Clustering, eps float64) *linalg.Matrix {
	d := len(points[0])
	s := linalg.NewMatrix(d, d)
	n := 0
	for _, members := range c.Clusters() {
		if len(members) == 0 {
			continue
		}
		mean := make([]float64, d)
		for _, o := range members {
			linalg.Axpy(1, points[o], mean)
		}
		linalg.ScaleVec(1/float64(len(members)), mean)
		for _, o := range members {
			diff := linalg.SubVec(points[o], mean)
			s.OuterInto(1, diff, diff)
			n++
		}
	}
	if n > 0 {
		for i := range s.Data {
			s.Data[i] /= float64(n)
		}
	}
	linalg.RegularizeInPlace(s, eps)
	return s
}

// MetricFlipResult carries the learned and flipped transformations.
type MetricFlipResult struct {
	Learned     *linalg.Matrix // D: metric under which `given` is compact
	Alternative *linalg.Matrix // M = H S^{-1} A^T: the inverted stretch
	Clustering  *core.Clustering
	Transformed [][]float64
}

// MetricFlip implements Davidson & Qi (2008, slides 50–52). The metric
// learned from the given clustering is the whitening transform
// D = Sw^{-1/2} (Sw = within-cluster scatter), under which the given
// clusters become spherical and easy; its SVD D = H·S·A^T is then flipped to
// M = H·S^{-1}·A^T, compressing exactly the directions D stretched. The
// base learner clusters {M·x}.
func MetricFlip(points [][]float64, given *core.Clustering, base Base) (*MetricFlipResult, error) {
	if len(points) == 0 {
		return nil, core.ErrEmptyDataset
	}
	if err := given.Validate(len(points)); err != nil {
		return nil, err
	}
	if base == nil {
		return nil, errors.New("orthogonal: nil base learner")
	}
	sw := withinClusterScatter(points, given, 1e-8)
	d, err := linalg.InvSqrt(sw, 1e-10)
	if err != nil {
		return nil, fmt.Errorf("orthogonal: learning metric: %w", err)
	}
	svd, err := linalg.ComputeSVD(d)
	if err != nil {
		return nil, fmt.Errorf("orthogonal: svd of learned metric: %w", err)
	}
	m := svd.InvertStretch(1e-10)
	transformed := applyTransform(points, m)
	c, err := base(transformed)
	if err != nil {
		return nil, err
	}
	return &MetricFlipResult{Learned: d, Alternative: m, Clustering: c, Transformed: transformed}, nil
}

// AlternativeTransformResult carries the closed-form transform of Qi &
// Davidson (2009) and the clustering found in the transformed space.
type AlternativeTransformResult struct {
	M           *linalg.Matrix // Sigma~^{-1/2}
	Clustering  *core.Clustering
	Transformed [][]float64
}

// AlternativeTransform implements Qi & Davidson (2009, slides 54–55):
// minimize the KL divergence between the original and transformed data
// distributions subject to transformed points sitting far from their old
// cluster means. The optimal linear map is M = Sigma~^{-1/2} with
//
//	Sigma~ = (1/n) sum_i sum_{j : x_i not in C_j} (x_i - m_j)(x_i - m_j)^T.
func AlternativeTransform(points [][]float64, given *core.Clustering, base Base) (*AlternativeTransformResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if err := given.Validate(n); err != nil {
		return nil, err
	}
	if base == nil {
		return nil, errors.New("orthogonal: nil base learner")
	}
	means := clusterMeans(points, given)
	if len(means) < 2 {
		return nil, errors.New("orthogonal: given clustering needs at least 2 clusters")
	}
	d := len(points[0])
	sigma := linalg.NewMatrix(d, d)
	clusters := given.Clusters()
	memberOf := make([]int, n)
	for i := range memberOf {
		memberOf[i] = -1
	}
	for ci, members := range clusters {
		for _, o := range members {
			memberOf[o] = ci
		}
	}
	for i, x := range points {
		for j := range means {
			if memberOf[i] == j {
				continue
			}
			diff := linalg.SubVec(x, means[j])
			sigma.OuterInto(1/float64(n), diff, diff)
		}
	}
	m, err := linalg.InvSqrt(sigma, 1e-10)
	if err != nil {
		return nil, fmt.Errorf("orthogonal: inverse sqrt of scatter: %w", err)
	}
	transformed := applyTransform(points, m)
	c, err := base(transformed)
	if err != nil {
		return nil, err
	}
	return &AlternativeTransformResult{M: m, Clustering: c, Transformed: transformed}, nil
}

// ProjectionIteration records one round of the Cui et al. loop.
type ProjectionIteration struct {
	Clustering       *core.Clustering
	Projector        *linalg.Matrix // applied AFTER this round to remove its structure
	ResidualVariance float64        // total variance remaining after projection
}

// OrthogonalProjectionsConfig controls the iterative projection loop.
type OrthogonalProjectionsConfig struct {
	MaxClusterings  int     // hard cap, default d (dimension)
	MinVarianceFrac float64 // stop when residual variance falls below this fraction of the original, default 0.05
	Components      int     // principal components of the means to remove per round; default k-1
}

// OrthogonalProjections implements Cui, Fern & Dy (2007, slides 57–60):
// cluster, find the subspace A spanned by the strong principal components of
// the cluster means, project the database onto the orthogonal complement
// I - A(A^T A)^{-1}A^T, and repeat until no variance (and hence no
// structure) remains. The number of clusterings is determined automatically.
func OrthogonalProjections(points [][]float64, base Base, cfg OrthogonalProjectionsConfig) ([]ProjectionIteration, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if base == nil {
		return nil, errors.New("orthogonal: nil base learner")
	}
	d := len(points[0])
	if cfg.MaxClusterings <= 0 {
		cfg.MaxClusterings = d
	}
	if cfg.MinVarianceFrac <= 0 {
		cfg.MinVarianceFrac = 0.05
	}

	cur := make([][]float64, n)
	for i, p := range points {
		cur[i] = append([]float64(nil), p...)
	}
	initialVar := totalVariance(cur)
	if initialVar == 0 {
		return nil, errors.New("orthogonal: data has no variance")
	}

	var out []ProjectionIteration
	for round := 0; round < cfg.MaxClusterings; round++ {
		c, err := base(cur)
		if err != nil {
			return nil, err
		}
		means := clusterMeans(cur, c)
		if len(means) < 2 {
			break
		}
		// Principal components of the means (centered); they span at most
		// k-1 dimensions.
		comp := cfg.Components
		if comp <= 0 || comp > len(means)-1 {
			comp = len(means) - 1
		}
		mm, err := linalg.FromRows(means)
		if err != nil {
			return nil, err
		}
		pca, err := linalg.ComputePCA(mm)
		if err != nil {
			return nil, err
		}
		a := pca.TopComponents(comp)
		proj, err := linalg.OrthogonalProjector(a)
		if err != nil {
			return nil, err
		}
		for i := range cur {
			cur[i] = proj.MulVec(cur[i])
		}
		resid := totalVariance(cur)
		out = append(out, ProjectionIteration{Clustering: c, Projector: proj, ResidualVariance: resid})
		if resid < cfg.MinVarianceFrac*initialVar {
			break
		}
	}
	if len(out) == 0 {
		return nil, errors.New("orthogonal: base learner produced no multi-cluster solution")
	}
	return out, nil
}

func totalVariance(points [][]float64) float64 {
	if len(points) == 0 {
		return 0
	}
	d := len(points[0])
	mean := make([]float64, d)
	for _, p := range points {
		linalg.Axpy(1, p, mean)
	}
	linalg.ScaleVec(1/float64(len(points)), mean)
	var v float64
	for _, p := range points {
		diff := linalg.SubVec(p, mean)
		v += linalg.Dot(diff, diff)
	}
	return v / float64(len(points))
}

func applyTransform(points [][]float64, m *linalg.Matrix) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = m.MulVec(p)
	}
	return out
}
