package orthogonal

import (
	"math"
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

func TestMetricFlipFindsAlternative(t *testing.T) {
	ds, hor, ver := dataset.FourBlobToy(1, 25)
	given := core.NewClustering(hor)
	res, err := MetricFlip(ds.Points, given, KMeansBase(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	altARI := metrics.AdjustedRand(ver, res.Clustering.Labels)
	givenARI := metrics.AdjustedRand(hor, res.Clustering.Labels)
	if altARI < 0.9 {
		t.Errorf("flip should reveal the vertical split: ARI=%v", altARI)
	}
	if givenARI > 0.2 {
		t.Errorf("flip result too similar to given: ARI=%v", givenARI)
	}
	if res.Learned == nil || res.Alternative == nil {
		t.Fatal("transforms missing")
	}
}

func TestMetricFlipStretchInversion(t *testing.T) {
	// The alternative transform must compress what the learned metric
	// stretched: the product of their actions along any direction should be
	// roughly isotropic. Verify D*M has near-equal singular values.
	ds, hor, _ := dataset.FourBlobToy(2, 20)
	res, err := MetricFlip(ds.Points, core.NewClustering(hor), KMeansBase(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	prod := res.Learned.Mul(res.Alternative)
	// D and M share singular vectors, so D*M = H S S^{-1} H^T = I exactly.
	n := prod.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-6 {
				t.Fatalf("D*M not identity at (%d,%d): %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestMetricFlipErrors(t *testing.T) {
	if _, err := MetricFlip(nil, core.NewClustering(nil), KMeansBase(2, 1)); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0, 0}, {1, 1}}
	if _, err := MetricFlip(pts, core.NewClustering([]int{0}), KMeansBase(2, 1)); err == nil {
		t.Error("label mismatch should fail")
	}
	if _, err := MetricFlip(pts, core.NewClustering([]int{0, 1}), nil); err == nil {
		t.Error("nil base should fail")
	}
}

func TestAlternativeTransformFindsAlternative(t *testing.T) {
	ds, hor, ver := dataset.FourBlobToy(3, 25)
	res, err := AlternativeTransform(ds.Points, core.NewClustering(hor), KMeansBase(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	altARI := metrics.AdjustedRand(ver, res.Clustering.Labels)
	givenARI := metrics.AdjustedRand(hor, res.Clustering.Labels)
	if altARI < 0.9 {
		t.Errorf("transform should reveal the vertical split: ARI=%v", altARI)
	}
	if givenARI > 0.2 {
		t.Errorf("transform result too similar to given: ARI=%v", givenARI)
	}
}

func TestAlternativeTransformMovesPointsFromOldMeans(t *testing.T) {
	// After the transform, distances of points to their OLD cluster means
	// (transformed) should be less concentrated than distances to other
	// means — i.e., the old structure is no longer privileged: compare mean
	// within-cluster distance under old labels, before vs after, normalized
	// by overall spread.
	ds, hor, _ := dataset.FourBlobToy(4, 25)
	given := core.NewClustering(hor)
	res, err := AlternativeTransform(ds.Points, given, KMeansBase(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	ratioBefore := metrics.AverageWithinDistance(ds.Points, given, euclid) / meanPairwise(ds.Points)
	ratioAfter := metrics.AverageWithinDistance(res.Transformed, given, euclid) / meanPairwise(res.Transformed)
	if ratioAfter <= ratioBefore {
		t.Errorf("old clustering should loosen: before=%v after=%v", ratioBefore, ratioAfter)
	}
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func meanPairwise(pts [][]float64) float64 {
	var s float64
	var c int
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			s += euclid(pts[i], pts[j])
			c++
		}
	}
	return s / float64(c)
}

func TestAlternativeTransformErrors(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	if _, err := AlternativeTransform(nil, core.NewClustering(nil), KMeansBase(2, 1)); err == nil {
		t.Error("empty data should fail")
	}
	// Single-cluster given knowledge cannot define the scatter.
	if _, err := AlternativeTransform(pts, core.NewClustering([]int{0, 0, 0}), KMeansBase(2, 1)); err == nil {
		t.Error("single-cluster given should fail")
	}
	if _, err := AlternativeTransform(pts, core.NewClustering([]int{0, 1, 0}), nil); err == nil {
		t.Error("nil base should fail")
	}
}

func TestOrthogonalProjectionsRecoversSuccessiveViews(t *testing.T) {
	// Two independent views in disjoint dimensions, the first with larger
	// spread so the first clustering locks onto it; projection removal then
	// exposes the second.
	ds, labelings, _ := dataset.MultiViewGaussians(5, 240, []dataset.ViewSpec{
		{Dims: 2, K: 2, Sep: 12, Sigma: 0.5},
		{Dims: 2, K: 2, Sep: 6, Sigma: 0.5},
	})
	iters, err := OrthogonalProjections(ds.Points, KMeansBase(2, 1), OrthogonalProjectionsConfig{MaxClusterings: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) < 2 {
		t.Fatalf("rounds = %d, want >= 2", len(iters))
	}
	first := metrics.AdjustedRand(labelings[0], iters[0].Clustering.Labels)
	second := metrics.AdjustedRand(labelings[1], iters[1].Clustering.Labels)
	if first < 0.9 {
		t.Errorf("round 1 should find the dominant view: ARI=%v", first)
	}
	if second < 0.8 {
		t.Errorf("round 2 should find the hidden view: ARI=%v", second)
	}
	// Residual variance decreases monotonically.
	for i := 1; i < len(iters); i++ {
		if iters[i].ResidualVariance > iters[i-1].ResidualVariance+1e-9 {
			t.Errorf("residual variance increased at round %d", i)
		}
	}
}

func TestOrthogonalProjectionsAutoStops(t *testing.T) {
	// Low-dimensional data: after removing the mean subspace once or twice
	// nothing remains; the loop must stop on its own well before the cap.
	ds, _, _ := dataset.FourBlobToy(6, 25)
	iters, err := OrthogonalProjections(ds.Points, KMeansBase(2, 4), OrthogonalProjectionsConfig{MaxClusterings: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) > 3 {
		t.Errorf("expected early stop in 2D, got %d rounds", len(iters))
	}
}

func TestOrthogonalProjectionsErrors(t *testing.T) {
	if _, err := OrthogonalProjections(nil, KMeansBase(2, 1), OrthogonalProjectionsConfig{}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{1, 1}, {1, 1}}
	if _, err := OrthogonalProjections(pts, KMeansBase(2, 1), OrthogonalProjectionsConfig{}); err == nil {
		t.Error("zero-variance data should fail")
	}
	if _, err := OrthogonalProjections([][]float64{{0, 1}, {1, 0}}, nil, OrthogonalProjectionsConfig{}); err == nil {
		t.Error("nil base should fail")
	}
}
