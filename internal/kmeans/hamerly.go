package kmeans

import (
	"context"
	"math"
	"sync/atomic"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// boundSlack inflates the upper bound in every pruning comparison. The
// Hamerly bounds are maintained with rounded float64 arithmetic (sqrt of a
// rounded squared distance, accumulated center movements), so a bound can
// sit a few ulps on the wrong side of the exact value; comparing against a
// bound inflated by 1e-12 relative makes the prune decision conservative —
// a borderline point falls through to the full Lloyd scan instead of being
// (mis)pruned — which is what keeps the assignments byte-identical to
// Lloyd. See DESIGN.md "Index & pruning invariants".
const boundSlack = 1 + 1e-12

// runOnceHamerly is runOnce with Hamerly's triangle-inequality pruning
// (Hamerly 2010): per point it keeps an upper bound u on the distance to
// the assigned center and a lower bound l on the distance to the
// second-closest center. When u < max(s(a)/2, l) — with s(a) the distance
// from the assigned center to its nearest other center — no other center
// can be closer and the point keeps its label without touching any center;
// otherwise u is tightened with one exact distance and, if the test still
// fails, the point falls back to the exact Lloyd scan (same iteration
// order, same strict <, same squared-distance comparisons), which also
// refreshes both bounds. Labels, iteration count, reassignment counts, and
// the recorded SSE trajectory are byte-identical to runOnce; only
// kmeans.distance_computations differs — that counter is the point.
func runOnceHamerly(ctx context.Context, points [][]float64, k, maxIter int, centers [][]float64, workers int, rec obs.Recorder) (*Result, error) {
	n, d := len(points), len(points[0])
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	upper := make([]float64, n)   // upper bound: distance to assigned center
	lower := make([]float64, n)   // lower bound: distance to second-closest center
	nearest := make([]float64, n) // exact squared distance to the assigned center (telemetry)
	sHalf := make([]float64, k)   // half distance from each center to its nearest other center
	move := make([]float64, k)    // per-center movement of the last update
	var nChanged, nDist int64
	var interrupted error
	iter := 0
	for ; iter < maxIter; iter++ {
		// s(c)/2 for the center-separation test; these k(k-1)/2 exact
		// distances are part of the algorithm's work and counted as such.
		for c := range sHalf {
			sHalf[c] = math.Inf(1)
		}
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				dd := dist.Euclidean(centers[a], centers[b])
				if h := dd / 2; h < sHalf[a] {
					sHalf[a] = h
				}
				if h := dd / 2; h < sHalf[b] {
					sHalf[b] = h
				}
			}
		}
		nChanged = 0
		nDist = int64(k) * int64(k-1) / 2
		trackSSE := rec != nil
		// Assignment, sharded over points exactly like runOnce: every write
		// is to the shard's own labels/bounds/nearest slots, so the result
		// is byte-identical for any worker count.
		parallel.For(n, workers, func(lo, hi int) {
			var changed, dcount int64
			for i := lo; i < hi; i++ {
				p := points[i]
				if a := labels[i]; a >= 0 {
					m := lower[i]
					if sHalf[a] > m {
						m = sHalf[a]
					}
					if upper[i]*boundSlack < m {
						if trackSSE {
							// Exact distance for the SSE trajectory only; not
							// part of the assignment work, so not counted.
							nearest[i] = dist.SqEuclidean(p, centers[a])
						}
						continue
					}
					sq := dist.SqEuclidean(p, centers[a])
					dcount++
					upper[i] = math.Sqrt(sq)
					if upper[i]*boundSlack < m {
						if trackSSE {
							nearest[i] = sq
						}
						continue
					}
				}
				// Full scan — the exact comparisons of runOnce, so the argmin
				// (including index-order tie-breaks) matches Lloyd.
				bestC := 0
				bestSq, secondSq := math.Inf(1), math.Inf(1)
				for c, ctr := range centers {
					sq := dist.SqEuclidean(p, ctr)
					if sq < bestSq {
						secondSq = bestSq
						bestC, bestSq = c, sq
					} else if sq < secondSq {
						secondSq = sq
					}
				}
				dcount += int64(k)
				if labels[i] != bestC {
					labels[i] = bestC
					changed++
				}
				upper[i] = math.Sqrt(bestSq)
				lower[i] = math.Sqrt(secondSq)
				if trackSSE {
					nearest[i] = bestSq
				}
			}
			if changed > 0 {
				atomic.AddInt64(&nChanged, changed)
			}
			if dcount > 0 {
				atomic.AddInt64(&nDist, dcount)
			}
		})
		if rec != nil {
			var iterSSE float64
			for _, dd := range nearest {
				iterSSE += dd
			}
			obs.Count(rec, "kmeans.iterations", 1)
			obs.Count(rec, "kmeans.reassignments", nChanged)
			obs.Count(rec, "kmeans.distance_computations", nDist)
			obs.Observe(rec, "kmeans.sse", iter, iterSSE)
		}
		if nChanged == 0 {
			break
		}
		next := recomputeCenters(points, labels, k, d, centers, rec)
		// Bound maintenance: the assigned center's movement loosens the
		// upper bound, the largest movement of any OTHER center loosens the
		// lower bound. Serial on purpose — adding a parallel dispatch here
		// would drift the parallel.* work counters away from Lloyd's.
		maxMove, secondMove, argMax := 0.0, 0.0, -1
		for c := range next {
			move[c] = dist.Euclidean(centers[c], next[c])
			if move[c] > maxMove {
				secondMove = maxMove
				maxMove, argMax = move[c], c
			} else if move[c] > secondMove {
				secondMove = move[c]
			}
		}
		for i := range labels {
			a := labels[i]
			upper[i] += move[a]
			mm := maxMove
			if a == argMax {
				mm = secondMove
			}
			lower[i] -= mm
		}
		centers = next
		// Iteration-boundary cancellation, mirroring runOnce.
		if err := ctx.Err(); err != nil {
			interrupted = err
			iter++
			break
		}
	}
	// Final SSE against the returned (Clustering, Centers) pair — the exact
	// pass runOnce performs, so the reported model cost is identical.
	var sse float64
	for i, p := range points {
		sse += dist.SqEuclidean(p, centers[labels[i]])
	}
	return &Result{
		Clustering: core.NewClustering(labels),
		Centers:    centers,
		SSE:        sse,
		Iterations: iter,
	}, interrupted
}
