package kmeans

import (
	"math/rand"
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/dist"
)

func TestRunSeparatesBlobs(t *testing.T) {
	ds, truth := dataset.GaussianBlobs(1, 120, [][]float64{{0, 0}, {10, 0}, {0, 10}}, 0.5)
	res, err := Run(ds.Points, Config{K: 3, Seed: 1, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustering.K() != 3 {
		t.Fatalf("K = %d", res.Clustering.K())
	}
	// Every ground-truth cluster must map to exactly one found cluster.
	mapping := map[int]int{}
	for i, l := range res.Clustering.Labels {
		if prev, ok := mapping[truth[i]]; ok && prev != l {
			t.Fatalf("ground truth cluster split: object %d", i)
		}
		mapping[truth[i]] = l
	}
	if res.SSE <= 0 {
		t.Errorf("SSE = %v", res.SSE)
	}
	if res.Iterations <= 0 {
		t.Errorf("Iterations = %d", res.Iterations)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, Config{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}, {1}}
	if _, err := Run(pts, Config{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Run(pts, Config{K: 3}); err == nil {
		t.Error("K>n should fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(2, 60, [][]float64{{0, 0}, {5, 5}}, 0.4)
	a, _ := Run(ds.Points, Config{K: 2, Seed: 9})
	b, _ := Run(ds.Points, Config{K: 2, Seed: 9})
	for i := range a.Clustering.Labels {
		if a.Clustering.Labels[i] != b.Clustering.Labels[i] {
			t.Fatal("same seed must give same labels")
		}
	}
}

func TestRestartsImproveOrEqual(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(3, 90, [][]float64{{0, 0}, {4, 0}, {8, 0}}, 0.6)
	one, _ := Run(ds.Points, Config{K: 3, Seed: 5, Restarts: 1})
	many, _ := Run(ds.Points, Config{K: 3, Seed: 5, Restarts: 8})
	if many.SSE > one.SSE+1e-9 {
		t.Errorf("more restarts worsened SSE: %v vs %v", many.SSE, one.SSE)
	}
}

func TestPlusPlusSeedsDistinct(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(4, 40, [][]float64{{0, 0}, {100, 100}}, 0.1)
	rng := rand.New(rand.NewSource(1))
	seeds := PlusPlusSeeds(ds.Points, 2, rng)
	if len(seeds) != 2 {
		t.Fatal("wrong seed count")
	}
	if dist.Euclidean(seeds[0], seeds[1]) < 10 {
		t.Error("k-means++ should pick far-apart seeds on separated blobs")
	}
}

func TestPlusPlusSeedsDegenerate(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	rng := rand.New(rand.NewSource(1))
	seeds := PlusPlusSeeds(pts, 3, rng)
	if len(seeds) != 3 {
		t.Fatal("should still return k seeds on duplicate data")
	}
}

func TestAssign(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}}
	pts := [][]float64{{1, 1}, {9, 9}}
	c := Assign(pts, centers, dist.Euclidean)
	if c.Labels[0] != 0 || c.Labels[1] != 1 {
		t.Errorf("Assign = %v", c.Labels)
	}
}

func TestSSEHelper(t *testing.T) {
	pts := [][]float64{{0}, {2}}
	c := core.NewClustering([]int{0, 0})
	centers := [][]float64{{1}}
	if got := SSE(pts, c, centers); got != 2 {
		t.Errorf("SSE = %v, want 2", got)
	}
	// Noise points ignored.
	c2 := core.NewClustering([]int{0, core.Noise})
	if got := SSE(pts, c2, centers); got != 1 {
		t.Errorf("SSE with noise = %v, want 1", got)
	}
}

func TestMedoids(t *testing.T) {
	ds, truth := dataset.GaussianBlobs(5, 60, [][]float64{{0, 0}, {8, 8}}, 0.4)
	c, meds, err := Medoids(ds.Points, 2, dist.Euclidean, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(meds) != 2 {
		t.Fatal("wrong medoid count")
	}
	agree := 0
	for i := range truth {
		if (truth[i] == truth[0]) == (c.Labels[i] == c.Labels[0]) {
			agree++
		}
	}
	if agree < 55 {
		t.Errorf("medoids agreement %d/60", agree)
	}
	if _, _, err := Medoids(nil, 2, dist.Euclidean, 1, 10); err == nil {
		t.Error("empty data should fail")
	}
	if _, _, err := Medoids(ds.Points, 0, dist.Euclidean, 1, 10); err == nil {
		t.Error("k=0 should fail")
	}
}
