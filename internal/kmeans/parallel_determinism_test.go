package kmeans

import (
	"testing"

	"multiclust/internal/dataset"
)

// The worker count must never change the fitted model: labels, centers, SSE
// and iteration count are compared exactly (not approximately) between the
// serial and parallel paths. Run under -race this also exercises the sharded
// assignment loop and the restart fan-out for data races.
func TestKMeansWorkersDeterministic(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(11, 150, [][]float64{{0, 0, 0}, {6, 0, 3}, {0, 6, -3}}, 0.9)
	serial, err := Run(ds.Points, Config{K: 3, Seed: 2, Restarts: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		par, err := Run(ds.Points, Config{K: 3, Seed: 2, Restarts: 8, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if par.SSE != serial.SSE {
			t.Errorf("workers=%d: SSE %v != serial %v", w, par.SSE, serial.SSE)
		}
		if par.Iterations != serial.Iterations {
			t.Errorf("workers=%d: iterations %d != serial %d", w, par.Iterations, serial.Iterations)
		}
		for i := range serial.Clustering.Labels {
			if par.Clustering.Labels[i] != serial.Clustering.Labels[i] {
				t.Fatalf("workers=%d: label %d differs", w, i)
			}
		}
		for c := range serial.Centers {
			for j := range serial.Centers[c] {
				if par.Centers[c][j] != serial.Centers[c][j] {
					t.Fatalf("workers=%d: center %d dim %d differs: %v vs %v",
						w, c, j, par.Centers[c][j], serial.Centers[c][j])
				}
			}
		}
	}
}

// Restart r must behave as an independent run seeded with Seed+r: the best
// of 8 restarts can never be worse than the single run with the same base
// seed, because that single run IS restart 0.
func TestRestartZeroIsBaseSeedRun(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(12, 90, [][]float64{{0, 0}, {4, 0}, {8, 0}}, 0.6)
	single, err := Run(ds.Points, Config{K: 3, Seed: 5, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(ds.Points, Config{K: 3, Seed: 5, Restarts: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if many.SSE > single.SSE {
		t.Errorf("best-of-8 SSE %v worse than restart 0 alone %v", many.SSE, single.SSE)
	}
}
