package kmeans

import (
	"math"
	"testing"

	"multiclust/internal/dataset"
)

// Two clusters emptying in the same center-recompute pass must be re-seeded
// to DISTINCT points; the old code picked the globally farthest point for
// both, collapsing them into duplicate centers.
func TestRecomputeCentersReseedsDistinctPoints(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 0}, {10, 0}, {-7, 0}}
	centers := [][]float64{{0.5, 0}, {100, 100}, {-100, -100}}
	labels := []int{0, 0, 0, 0} // clusters 1 and 2 are empty simultaneously
	next := recomputeCenters(points, labels, 3, 2, centers, nil)

	if len(next) != 3 {
		t.Fatalf("got %d centers", len(next))
	}
	// Cluster 1 takes the farthest point from its assigned center (10,0);
	// cluster 2 must exclude it and take the second farthest (-7,0).
	if next[1][0] != 10 || next[2][0] != -7 {
		t.Errorf("reseeded centers = %v, %v; want (10,0) then (-7,0)", next[1], next[2])
	}
	if next[1][0] == next[2][0] && next[1][1] == next[2][1] {
		t.Fatalf("simultaneously emptied clusters collapsed onto one point: %v", next[1])
	}
	// The surviving cluster keeps its mean.
	if next[0][0] != 1.0 || next[0][1] != 0 {
		t.Errorf("mean center = %v, want (1,0)", next[0])
	}
}

// With more empty clusters than points every point gets used; the fallback
// must not panic or index out of range.
func TestRecomputeCentersDegenerateAllUsed(t *testing.T) {
	points := [][]float64{{1, 1}}
	centers := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	labels := []int{0}
	next := recomputeCenters(points, labels, 3, 2, centers, nil)
	for c, ctr := range next {
		if ctr[0] != 1 || ctr[1] != 1 {
			t.Errorf("center %d = %v, want (1,1)", c, ctr)
		}
	}
}

// Result.SSE must always be the SSE of the returned (Clustering, Centers)
// pair, including when MaxIter stops the loop before convergence — the old
// code reported the SSE measured against the previous iteration's centers.
func TestSSEMatchesReturnedModelAtMaxIter(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(7, 80, [][]float64{{0, 0}, {6, 0}, {0, 6}}, 0.8)
	for _, maxIter := range []int{1, 2, 100} {
		res, err := Run(ds.Points, Config{K: 3, Seed: 3, MaxIter: maxIter})
		if err != nil {
			t.Fatal(err)
		}
		want := SSE(ds.Points, res.Clustering, res.Centers)
		if res.SSE != want {
			t.Errorf("MaxIter=%d: Result.SSE = %v, SSE(Clustering, Centers) = %v", maxIter, res.SSE, want)
		}
	}
}

// Truncating the iteration budget must never report a better (lower) SSE
// than the converged run from the same seed: the truncated model is a
// prefix of the converged one's trajectory. The old MaxIter bug could
// report an SSE belonging to neither the returned centers nor labels,
// breaking this monotonicity.
func TestSSEMonotoneInIterationBudget(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(8, 60, [][]float64{{0, 0}, {5, 5}}, 1.2)
	full, err := Run(ds.Points, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, maxIter := range []int{1, 2, 4, 8} {
		res, err := Run(ds.Points, Config{K: 2, Seed: 1, MaxIter: maxIter})
		if err != nil {
			t.Fatal(err)
		}
		if res.SSE > prev+1e-9 {
			t.Errorf("MaxIter=%d: SSE %v worse than smaller budget %v", maxIter, res.SSE, prev)
		}
		if res.SSE < full.SSE-1e-9 {
			t.Errorf("MaxIter=%d: truncated SSE %v beats converged %v", maxIter, res.SSE, full.SSE)
		}
		prev = res.SSE
	}
}
