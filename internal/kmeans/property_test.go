package kmeans

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multiclust/internal/dist"
)

// Property: every k-means result is a total K-partition with centers equal
// to the means of their assigned points (fixed-point condition).
func TestQuickKMeansFixedPoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(40)
		k := 1 + r.Intn(3)
		d := 1 + r.Intn(3)
		pts := make([][]float64, n)
		for i := range pts {
			row := make([]float64, d)
			for j := range row {
				row[j] = r.NormFloat64()
			}
			pts[i] = row
		}
		res, err := Run(pts, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		// Total assignment with valid labels.
		counts := make([]int, k)
		for _, l := range res.Clustering.Labels {
			if l < 0 || l >= k {
				return false
			}
			counts[l]++
		}
		// Non-empty clusters have centers at their member means.
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			mean := make([]float64, d)
			for i, p := range pts {
				if res.Clustering.Labels[i] == c {
					for j, v := range p {
						mean[j] += v
					}
				}
			}
			for j := range mean {
				mean[j] /= float64(counts[c])
				diff := mean[j] - res.Centers[c][j]
				if diff > 1e-6 || diff < -1e-6 {
					return false
				}
			}
		}
		// Each point sits with its nearest center.
		for i, p := range pts {
			own := dist.SqEuclidean(p, res.Centers[res.Clustering.Labels[i]])
			for c := 0; c < k; c++ {
				if dist.SqEuclidean(p, res.Centers[c]) < own-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SSE never increases when k grows (best-of-restarts).
func TestSSEMonotoneInK(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 60
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{r.NormFloat64(), r.NormFloat64()}
	}
	prev := -1.0
	for k := 1; k <= 5; k++ {
		res, err := Run(pts, Config{K: k, Seed: 1, Restarts: 10})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.SSE > prev+1e-6 {
			t.Errorf("SSE increased from k=%d to k=%d: %v -> %v", k-1, k, prev, res.SSE)
		}
		prev = res.SSE
	}
}
