// Package kmeans implements Lloyd's k-means with k-means++ seeding, random
// restarts, and a k-medoid variant. K-means is the tutorial's running example
// of a traditional single-solution algorithm (slide 3) and the base learner
// inside several multiple-clustering methods (decorrelated k-means, meta
// clustering, orthogonal projections).
package kmeans

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// Config controls a k-means run.
type Config struct {
	K        int
	MaxIter  int   // default 100
	Restarts int   // default 1; best-SSE run wins
	Seed     int64 // RNG seed for seeding; restart r derives seed Seed+r
	Workers  int   // parallelism; <=0 resolves via internal/parallel
	// Pruning selects the assignment strategy. The default (zero value)
	// resolves to Hamerly's triangle-inequality bounds, which skip exact
	// distance evaluations that provably cannot change a point's label;
	// assignments, iteration counts, and the recorded SSE trajectory are
	// byte-identical to the plain Lloyd scans (pinned by the determinism
	// suite at workers 1/2/4/8), only kmeans.distance_computations drops.
	Pruning Pruning
}

// Pruning selects how the assignment step evaluates distances.
type Pruning int

const (
	// PruneDefault resolves to PruneHamerly.
	PruneDefault Pruning = iota
	// PruneOff runs plain Lloyd full scans (n*k exact distances per
	// iteration) — the reference the pruned path is pinned against.
	PruneOff
	// PruneHamerly maintains Hamerly's upper/lower bounds to skip provably
	// unchanged points.
	PruneHamerly
)

// Result is a fitted k-means model.
type Result struct {
	Clustering *core.Clustering
	Centers    [][]float64
	SSE        float64 // sum of squared distances to assigned centers
	Iterations int
}

// Run clusters points with Lloyd's algorithm.
func Run(points [][]float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), points, cfg)
}

// RunContext is Run with cancellation: each restart polls ctx at its
// iteration boundary (after a full assignment pass, so labels are always
// valid) and stops early when the context is done. The best-so-far result
// across restarts is still returned, wrapped in core.ErrInterrupted. With a
// background context the output is byte-identical to Run.
func RunContext(ctx context.Context, points [][]float64, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d: %w", cfg.K, core.ErrInvalidInput)
	}
	if cfg.K > n {
		return nil, fmt.Errorf("kmeans: K=%d exceeds n=%d: %w", cfg.K, n, core.ErrInvalidInput)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	// Restarts are independent: each derives its own seed (cfg.Seed + r) up
	// front and runs concurrently; the best-SSE selection scans in restart
	// order with a strict <, so the winner is independent of completion
	// order (ties go to the lowest restart index).
	w := parallel.Workers(cfg.Workers)
	innerW := w / cfg.Restarts
	if innerW < 1 {
		innerW = 1
	}
	rec := obs.From(ctx)
	ctx, endSpan := obs.SpanCtx(ctx, rec, "kmeans.run")
	defer endSpan()
	obs.Count(rec, "kmeans.restarts", int64(cfg.Restarts))
	type restartOut struct {
		res *Result
		err error
	}
	pruned := cfg.Pruning != PruneOff
	outs := parallel.Map(cfg.Restarts, w, func(r int) restartOut {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)))
		centers := PlusPlusSeeds(points, cfg.K, rng)
		var res *Result
		var err error
		if pruned {
			res, err = runOnceHamerly(ctx, points, cfg.K, cfg.MaxIter, centers, innerW, rec)
		} else {
			res, err = runOnce(ctx, points, cfg.K, cfg.MaxIter, centers, innerW, rec)
		}
		return restartOut{res, err}
	})
	best := outs[0]
	for _, o := range outs[1:] {
		if o.res.SSE < best.res.SSE {
			best = o
		}
	}
	for _, o := range outs {
		if o.err != nil {
			return best.res, fmt.Errorf("kmeans: interrupted: %v: %w", o.err, core.ErrInterrupted)
		}
	}
	return best.res, nil
}

func runOnce(ctx context.Context, points [][]float64, k, maxIter int, centers [][]float64, workers int, rec obs.Recorder) (*Result, error) {
	n, d := len(points), len(points[0])
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	nearest := make([]float64, n) // squared distance to the assigned center
	var nChanged int64
	var interrupted error
	iter := 0
	for ; iter < maxIter; iter++ {
		// Assignment, sharded over points. Each shard writes disjoint
		// labels[i]/nearest[i] entries; the SSE is NOT accumulated here but
		// summed over nearest in index order below, so the total is
		// byte-identical for every worker count.
		nChanged = 0
		parallel.For(n, workers, func(lo, hi int) {
			var changed int64
			for i := lo; i < hi; i++ {
				p := points[i]
				bestC, bestD := 0, math.Inf(1)
				for c, ctr := range centers {
					if dd := dist.SqEuclidean(p, ctr); dd < bestD {
						bestC, bestD = c, dd
					}
				}
				if labels[i] != bestC {
					labels[i] = bestC
					changed++
				}
				nearest[i] = bestD
			}
			if changed > 0 {
				atomic.AddInt64(&nChanged, changed)
			}
		})
		// Trajectory instrumentation, gated so the disabled path pays only
		// this nil check per iteration. The per-iteration SSE is the sum of
		// the freshly written nearest[] slots in index order (deterministic
		// for any worker count); it measures the assignment against the
		// centers that produced it.
		if rec != nil {
			var iterSSE float64
			for _, dd := range nearest {
				iterSSE += dd
			}
			obs.Count(rec, "kmeans.iterations", 1)
			obs.Count(rec, "kmeans.reassignments", nChanged)
			obs.Count(rec, "kmeans.distance_computations", int64(n)*int64(len(centers)))
			obs.Observe(rec, "kmeans.sse", iter, iterSSE)
		}
		if nChanged == 0 {
			break
		}
		centers = recomputeCenters(points, labels, k, d, centers, rec)
		// Iteration-boundary cancellation: labels are fully assigned here, so
		// the partial model below is structurally valid.
		if err := ctx.Err(); err != nil {
			interrupted = err
			iter++
			break
		}
	}
	// Report the SSE of the returned (Clustering, Centers) pair: when the
	// loop exhausts MaxIter the centers were recomputed after the last
	// assignment, so the in-loop sum (measured against the previous centers)
	// would overstate the cost of the model actually returned.
	var sse float64
	for i, p := range points {
		sse += dist.SqEuclidean(p, centers[labels[i]])
	}
	return &Result{
		Clustering: core.NewClustering(labels),
		Centers:    centers,
		SSE:        sse,
		Iterations: iter,
	}, interrupted
}

// recomputeCenters returns the mean of each cluster's members. Empty
// clusters are re-seeded to the point farthest from its assigned center —
// the standard dead-centroid fix — excluding points already claimed by
// another reseed in the same pass, so two clusters that empty in the same
// iteration land on distinct points instead of collapsing onto one.
func recomputeCenters(points [][]float64, labels []int, k, d int, centers [][]float64, rec obs.Recorder) [][]float64 {
	counts := make([]int, k)
	next := make([][]float64, k)
	for c := range next {
		next[c] = make([]float64, d)
	}
	for i, p := range points {
		c := labels[i]
		counts[c]++
		for j, v := range p {
			next[c][j] += v
		}
	}
	var used []bool
	for c := range next {
		if counts[c] == 0 {
			obs.Count(rec, "kmeans.reseeds", 1)
			if used == nil {
				used = make([]bool, len(points))
			}
			far, farD := -1, -1.0
			for i, p := range points {
				if used[i] {
					continue
				}
				if dd := dist.SqEuclidean(p, centers[labels[i]]); dd > farD {
					far, farD = i, dd
				}
			}
			if far < 0 {
				far = 0 // more empty clusters than points; degenerate input
			}
			used[far] = true
			copy(next[c], points[far])
			continue
		}
		for j := range next[c] {
			next[c][j] /= float64(counts[c])
		}
	}
	return next
}

// PlusPlusSeeds picks k initial centers with the k-means++ D^2 weighting.
func PlusPlusSeeds(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centers = append(centers, append([]float64(nil), first...))
	d2 := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if dd := dist.SqEuclidean(p, c); dd < best {
					best = dd
				}
			}
			d2[i] = best
			total += best
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var cum float64
			for i, w := range d2 {
				cum += w
				if cum >= target {
					idx = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), points[idx]...))
	}
	return centers
}

// Assign labels each point to its nearest center under d.
func Assign(points [][]float64, centers [][]float64, d dist.Func) *core.Clustering {
	labels := make([]int, len(points))
	for i, p := range points {
		bestC, bestD := 0, math.Inf(1)
		for c, ctr := range centers {
			if dd := d(p, ctr); dd < bestD {
				bestC, bestD = c, dd
			}
		}
		labels[i] = bestC
	}
	return core.NewClustering(labels)
}

// SSE returns the sum of squared Euclidean distances from each point to its
// assigned center; the tutorial's example quality function Q for k-means
// (slide 28), negated (lower SSE = higher quality).
func SSE(points [][]float64, c *core.Clustering, centers [][]float64) float64 {
	var s float64
	for i, p := range points {
		l := c.Labels[i]
		if l < 0 || l >= len(centers) {
			continue
		}
		s += dist.SqEuclidean(p, centers[l])
	}
	return s
}

// Medoids runs a PAM-style k-medoid clustering under an arbitrary distance,
// used by PROCLUS. It greedily swaps medoids while the total assignment cost
// improves.
func Medoids(points [][]float64, k int, d dist.Func, seed int64, maxIter int) (*core.Clustering, []int, error) {
	n := len(points)
	if n == 0 {
		return nil, nil, core.ErrEmptyDataset
	}
	if k <= 0 || k > n {
		return nil, nil, errors.New("kmeans: invalid medoid count")
	}
	if maxIter <= 0 {
		maxIter = 30
	}
	rng := rand.New(rand.NewSource(seed))
	medoids := rng.Perm(n)[:k]
	assign := func(meds []int) ([]int, float64) {
		labels := make([]int, n)
		var cost float64
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c, m := range meds {
				if dd := d(p, points[m]); dd < bestD {
					bestC, bestD = c, dd
				}
			}
			labels[i] = bestC
			cost += bestD
		}
		return labels, cost
	}
	labels, cost := assign(medoids)
	for iter := 0; iter < maxIter; iter++ {
		improved := false
		for c := 0; c < k; c++ {
			for cand := 0; cand < n; cand++ {
				if contains(medoids, cand) {
					continue
				}
				trial := append([]int(nil), medoids...)
				trial[c] = cand
				tl, tc := assign(trial)
				if tc < cost-1e-12 {
					medoids, labels, cost = trial, tl, tc
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return core.NewClustering(labels), medoids, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
