// Package kmeans implements Lloyd's k-means with k-means++ seeding, random
// restarts, and a k-medoid variant. K-means is the tutorial's running example
// of a traditional single-solution algorithm (slide 3) and the base learner
// inside several multiple-clustering methods (decorrelated k-means, meta
// clustering, orthogonal projections).
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

// Config controls a k-means run.
type Config struct {
	K        int
	MaxIter  int   // default 100
	Restarts int   // default 1; best-SSE run wins
	Seed     int64 // RNG seed for seeding and restarts
}

// Result is a fitted k-means model.
type Result struct {
	Clustering *core.Clustering
	Centers    [][]float64
	SSE        float64 // sum of squared distances to assigned centers
	Iterations int
}

// Run clusters points with Lloyd's algorithm.
func Run(points [][]float64, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: K must be positive, got %d", cfg.K)
	}
	if cfg.K > n {
		return nil, fmt.Errorf("kmeans: K=%d exceeds n=%d", cfg.K, n)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var best *Result
	for r := 0; r < cfg.Restarts; r++ {
		res := runOnce(points, cfg.K, cfg.MaxIter, rng)
		if best == nil || res.SSE < best.SSE {
			best = res
		}
	}
	return best, nil
}

func runOnce(points [][]float64, k, maxIter int, rng *rand.Rand) *Result {
	centers := PlusPlusSeeds(points, k, rng)
	n, d := len(points), len(points[0])
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var sse float64
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		sse = 0
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if dd := dist.SqEuclidean(p, ctr); dd < bestD {
					bestC, bestD = c, dd
				}
			}
			if labels[i] != bestC {
				labels[i] = bestC
				changed = true
			}
			sse += bestD
		}
		if !changed {
			break
		}
		// Recompute centers; empty clusters get re-seeded to the point
		// farthest from its center, the standard fix for dead centroids.
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, d)
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for j, v := range p {
				next[c][j] += v
			}
		}
		for c := range next {
			if counts[c] == 0 {
				far, farD := 0, -1.0
				for i, p := range points {
					if dd := dist.SqEuclidean(p, centers[labels[i]]); dd > farD {
						far, farD = i, dd
					}
				}
				copy(next[c], points[far])
				continue
			}
			for j := range next[c] {
				next[c][j] /= float64(counts[c])
			}
		}
		centers = next
	}
	return &Result{
		Clustering: core.NewClustering(labels),
		Centers:    centers,
		SSE:        sse,
		Iterations: iter,
	}
}

// PlusPlusSeeds picks k initial centers with the k-means++ D^2 weighting.
func PlusPlusSeeds(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centers = append(centers, append([]float64(nil), first...))
	d2 := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if dd := dist.SqEuclidean(p, c); dd < best {
					best = dd
				}
			}
			d2[i] = best
			total += best
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var cum float64
			for i, w := range d2 {
				cum += w
				if cum >= target {
					idx = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), points[idx]...))
	}
	return centers
}

// Assign labels each point to its nearest center under d.
func Assign(points [][]float64, centers [][]float64, d dist.Func) *core.Clustering {
	labels := make([]int, len(points))
	for i, p := range points {
		bestC, bestD := 0, math.Inf(1)
		for c, ctr := range centers {
			if dd := d(p, ctr); dd < bestD {
				bestC, bestD = c, dd
			}
		}
		labels[i] = bestC
	}
	return core.NewClustering(labels)
}

// SSE returns the sum of squared Euclidean distances from each point to its
// assigned center; the tutorial's example quality function Q for k-means
// (slide 28), negated (lower SSE = higher quality).
func SSE(points [][]float64, c *core.Clustering, centers [][]float64) float64 {
	var s float64
	for i, p := range points {
		l := c.Labels[i]
		if l < 0 || l >= len(centers) {
			continue
		}
		s += dist.SqEuclidean(p, centers[l])
	}
	return s
}

// Medoids runs a PAM-style k-medoid clustering under an arbitrary distance,
// used by PROCLUS. It greedily swaps medoids while the total assignment cost
// improves.
func Medoids(points [][]float64, k int, d dist.Func, seed int64, maxIter int) (*core.Clustering, []int, error) {
	n := len(points)
	if n == 0 {
		return nil, nil, core.ErrEmptyDataset
	}
	if k <= 0 || k > n {
		return nil, nil, errors.New("kmeans: invalid medoid count")
	}
	if maxIter <= 0 {
		maxIter = 30
	}
	rng := rand.New(rand.NewSource(seed))
	medoids := rng.Perm(n)[:k]
	assign := func(meds []int) ([]int, float64) {
		labels := make([]int, n)
		var cost float64
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c, m := range meds {
				if dd := d(p, points[m]); dd < bestD {
					bestC, bestD = c, dd
				}
			}
			labels[i] = bestC
			cost += bestD
		}
		return labels, cost
	}
	labels, cost := assign(medoids)
	for iter := 0; iter < maxIter; iter++ {
		improved := false
		for c := 0; c < k; c++ {
			for cand := 0; cand < n; cand++ {
				if contains(medoids, cand) {
					continue
				}
				trial := append([]int(nil), medoids...)
				trial[c] = cand
				tl, tc := assign(trial)
				if tc < cost-1e-12 {
					medoids, labels, cost = trial, tl, tc
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return core.NewClustering(labels), medoids, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
