package kmeans

import (
	"math"
	"sync/atomic"

	"multiclust/internal/dist"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// AssignPruned assigns every point to its nearest center in one pass,
// pruning candidate centers with the same center-separation lemma the
// Hamerly iteration uses: once the best-so-far center b is at distance u,
// any center c with d(b, c) ≥ 2u cannot be strictly closer (triangle
// inequality), so its exact distance is never computed. The k(k−1)/2
// center–center distances are computed once up front and counted as work.
//
// Labels are byte-identical to a full Assign scan: the scan keeps the
// strict-< index-order argmin, and a center is only skipped when it provably
// cannot win that comparison — with the bound inflated by boundSlack so
// rounded center–center distances stay conservative (a borderline center
// falls through to the exact computation). The returned sq slice holds the
// exact squared distance of each point to its assigned center — the
// streaming layer's SSE terms and D²-reseed weights.
//
// The point loop is sharded over internal/parallel with per-slot writes
// only, so labels and sq are identical for any worker count; only the
// kmeans.distance_computations total reflects how much the pruning saved.
func AssignPruned(points, centers [][]float64, workers int, rec obs.Recorder) (labels []int, sq []float64) {
	n, k := len(points), len(centers)
	labels = make([]int, n)
	sq = make([]float64, n)
	// Pairwise center separations for the pruning test.
	cc := make([][]float64, k)
	for a := range cc {
		cc[a] = make([]float64, k)
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			dd := dist.Euclidean(centers[a], centers[b])
			cc[a][b], cc[b][a] = dd, dd
		}
	}
	var nDist int64
	parallel.For(n, workers, func(lo, hi int) {
		var dcount int64
		for i := lo; i < hi; i++ {
			p := points[i]
			bestC := 0
			bestSq := dist.SqEuclidean(p, centers[0])
			bestU := -1.0 // sqrt(bestSq), computed lazily at the first prune test
			dcount++
			for c := 1; c < k; c++ {
				if bestU < 0 {
					bestU = math.Sqrt(bestSq)
				}
				if cc[bestC][c] >= 2*bestU*boundSlack {
					continue // cannot be strictly closer than the current best
				}
				d2 := dist.SqEuclidean(p, centers[c])
				dcount++
				if d2 < bestSq {
					bestC, bestSq = c, d2
					bestU = -1
				}
			}
			labels[i] = bestC
			sq[i] = bestSq
		}
		if dcount > 0 {
			atomic.AddInt64(&nDist, dcount)
		}
	})
	obs.Count(rec, "kmeans.distance_computations", nDist+int64(k)*int64(k-1)/2)
	return labels, sq
}
