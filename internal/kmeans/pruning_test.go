package kmeans

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"multiclust/internal/obs"
)

func randomBlobPoints(seed int64, n, dims, blobs int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, blobs)
	for b := range centers {
		row := make([]float64, dims)
		for j := range row {
			row[j] = rng.Float64() * 10
		}
		centers[b] = row
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[rng.Intn(blobs)]
		row := make([]float64, dims)
		for j := range row {
			row[j] = c[j] + rng.NormFloat64()*0.5
		}
		pts[i] = row
	}
	return pts
}

// TestHamerlyMatchesLloyd pins the pruning invariant: for every worker
// count, Hamerly-pruned runs must be byte-identical to Lloyd in labels,
// centers, SSE, and iteration count — the bounds only skip distance
// evaluations that provably cannot change the argmin.
func TestHamerlyMatchesLloyd(t *testing.T) {
	for _, tc := range []struct {
		seed    int64
		n, dims int
		k       int
	}{
		{1, 400, 3, 4},
		{2, 250, 2, 5},
		{3, 600, 5, 3},
		{4, 120, 2, 8},
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d_n=%d_k=%d", tc.seed, tc.n, tc.k), func(t *testing.T) {
			pts := randomBlobPoints(tc.seed, tc.n, tc.dims, tc.k)
			for _, w := range []int{1, 2, 4, 8} {
				lloyd, err := Run(pts, Config{K: tc.k, Seed: tc.seed, Restarts: 2, Workers: w, Pruning: PruneOff})
				if err != nil {
					t.Fatal(err)
				}
				ham, err := Run(pts, Config{K: tc.k, Seed: tc.seed, Restarts: 2, Workers: w, Pruning: PruneHamerly})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(lloyd, ham) {
					t.Errorf("workers=%d: Hamerly result diverges from Lloyd (labels equal: %v, SSE %v vs %v, iters %d vs %d)",
						w, reflect.DeepEqual(lloyd.Clustering.Labels, ham.Clustering.Labels),
						lloyd.SSE, ham.SSE, lloyd.Iterations, ham.Iterations)
				}
			}
		})
	}
}

// TestPruneDefaultIsHamerly pins the knob's default: the zero value must
// run the pruned path and match an explicit PruneHamerly run exactly.
func TestPruneDefaultIsHamerly(t *testing.T) {
	pts := randomBlobPoints(7, 300, 3, 4)
	def, err := Run(pts, Config{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ham, err := Run(pts, Config{K: 4, Seed: 7, Pruning: PruneHamerly})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, ham) {
		t.Error("PruneDefault does not match PruneHamerly")
	}
}

// TestHamerlyTelemetryMatchesLloyd pins the instrumented trajectories: the
// recorded iterations, reassignments, and per-iteration SSE series must be
// byte-identical between the two paths; only distance_computations may —
// and must — differ, with Hamerly doing strictly less work than Lloyd's
// n*k per iteration.
func TestHamerlyTelemetryMatchesLloyd(t *testing.T) {
	pts := randomBlobPoints(11, 500, 3, 4)
	snap := func(p Pruning) (obs.Snapshot, *Result) {
		col := obs.NewCollector()
		ctx := obs.NewContext(context.Background(), col)
		res, err := RunContext(ctx, pts, Config{K: 4, Seed: 11, Pruning: p})
		if err != nil {
			t.Fatal(err)
		}
		return col.Snapshot(), res
	}
	ls, lr := snap(PruneOff)
	hs, hr := snap(PruneHamerly)
	for _, k := range []string{"kmeans.iterations", "kmeans.reassignments", "kmeans.restarts"} {
		if ls.Counters[k] != hs.Counters[k] {
			t.Errorf("counter %s: lloyd %d vs hamerly %d", k, ls.Counters[k], hs.Counters[k])
		}
	}
	if !reflect.DeepEqual(ls.Series["kmeans.sse"], hs.Series["kmeans.sse"]) {
		t.Error("per-iteration SSE series diverge")
	}
	ld, hd := ls.Counters["kmeans.distance_computations"], hs.Counters["kmeans.distance_computations"]
	if ld == 0 || hd == 0 {
		t.Fatalf("distance_computations not recorded (lloyd %d, hamerly %d)", ld, hd)
	}
	if hd >= ld {
		t.Errorf("pruning saved nothing: hamerly %d >= lloyd %d distance computations", hd, ld)
	}
	if hr.SSE != lr.SSE || hr.Iterations != lr.Iterations {
		t.Errorf("results diverge: SSE %v vs %v, iters %d vs %d", hr.SSE, lr.SSE, hr.Iterations, lr.Iterations)
	}
}
