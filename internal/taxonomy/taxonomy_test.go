package taxonomy

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) < 20 {
		t.Fatalf("registry has %d entries, expected the full survey", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.Algorithm == "" || e.Reference == "" || e.Package == "" {
			t.Errorf("incomplete entry: %+v", e)
		}
		if seen[e.Algorithm] {
			t.Errorf("duplicate algorithm %q", e.Algorithm)
		}
		seen[e.Algorithm] = true
	}
	// Every paradigm of the tutorial is populated.
	spaces := BySpace()
	for _, s := range []SearchSpace{OriginalSpace, TransformedSpace, SubspaceProjections, MultipleSources} {
		if len(spaces[s]) == 0 {
			t.Errorf("no algorithms in search space %v", s)
		}
	}
}

func TestLookup(t *testing.T) {
	e, ok := Lookup("coala")
	if !ok {
		t.Fatal("COALA not found (lookup should be case-insensitive)")
	}
	if e.Space != OriginalSpace || e.Knowledge != GivenClustering {
		t.Errorf("COALA misclassified: %+v", e)
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown algorithm should not resolve")
	}
}

func TestTaxonomyMatchesTutorialClaims(t *testing.T) {
	// Spot-check rows against the tutorial's table (slide 116).
	checks := []struct {
		name  string
		space SearchSpace
		proc  Processing
		know  Knowledge
		sols  Solutions
	}{
		{"MetaClustering", OriginalSpace, IndependentProcessing, NoKnowledge, ManySolutions},
		{"DecorrelatedKMeans", OriginalSpace, SimultaneousProcessing, NoKnowledge, ManySolutions},
		{"MetricFlip", TransformedSpace, IterativeProcessing, GivenClustering, TwoSolutions},
		{"OrthogonalProjections", TransformedSpace, IterativeProcessing, GivenClustering, ManySolutions},
		{"CLIQUE", SubspaceProjections, IndependentProcessing, NoKnowledge, ManySolutions},
		{"ASCLU", SubspaceProjections, SimultaneousProcessing, GivenClustering, ManySolutions},
		{"CoEM", MultipleSources, SimultaneousProcessing, NoKnowledge, OneSolution},
	}
	for _, c := range checks {
		e, ok := Lookup(c.name)
		if !ok {
			t.Errorf("%s missing", c.name)
			continue
		}
		if e.Space != c.space || e.Processing != c.proc || e.Knowledge != c.know || e.Solutions != c.sols {
			t.Errorf("%s misclassified: %+v", c.name, e)
		}
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(Registry())+1 {
		t.Errorf("table has %d lines, want %d", len(lines), len(Registry())+1)
	}
	for _, name := range []string{"COALA", "CLIQUE", "CoEM", "OSCLU"} {
		if !strings.Contains(out, name) {
			t.Errorf("table missing %s", name)
		}
	}
	// Grouped by space: original rows precede subspace rows.
	if strings.Index(out, "MetaClustering") > strings.Index(out, "CLIQUE") {
		t.Error("table not grouped by search space")
	}
}

func TestEnumStrings(t *testing.T) {
	if OriginalSpace.String() != "original" || SubspaceProjections.String() != "subspaces" {
		t.Error("SearchSpace names wrong")
	}
	if IterativeProcessing.String() != "iterative" {
		t.Error("Processing names wrong")
	}
	if GivenClustering.String() != "given clustering" {
		t.Error("Knowledge names wrong")
	}
	if TwoSolutions.String() != "m = 2" {
		t.Error("Solutions names wrong")
	}
	if DissimilarViews.String() != "dissimilarity" {
		t.Error("ViewHandling names wrong")
	}
	// Unknown values still render.
	if SearchSpace(99).String() == "" || Processing(99).String() == "" ||
		Knowledge(99).String() == "" || Solutions(99).String() == "" || ViewHandling(99).String() == "" {
		t.Error("unknown enum values should render")
	}
}
