// Package taxonomy encodes the tutorial's classification of multiple-
// clustering methods (slides 20–22 and 116) and regenerates its comparison
// table from the metadata of the algorithms implemented in this module.
package taxonomy

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SearchSpace is the primary taxonomy axis: where the clusterings live.
type SearchSpace int

const (
	OriginalSpace SearchSpace = iota
	TransformedSpace
	SubspaceProjections
	MultipleSources
)

func (s SearchSpace) String() string {
	switch s {
	case OriginalSpace:
		return "original"
	case TransformedSpace:
		return "transformed"
	case SubspaceProjections:
		return "subspaces"
	case MultipleSources:
		return "multi-source"
	default:
		return fmt.Sprintf("SearchSpace(%d)", int(s))
	}
}

// Processing distinguishes iterative extraction from simultaneous
// optimization of all solutions.
type Processing int

const (
	IndependentProcessing Processing = iota
	IterativeProcessing
	SimultaneousProcessing
)

func (p Processing) String() string {
	switch p {
	case IndependentProcessing:
		return "independent"
	case IterativeProcessing:
		return "iterative"
	case SimultaneousProcessing:
		return "simultaneous"
	default:
		return fmt.Sprintf("Processing(%d)", int(p))
	}
}

// Knowledge states whether prior clusterings are consumed.
type Knowledge int

const (
	NoKnowledge Knowledge = iota
	GivenClustering
	GivenViews
)

func (k Knowledge) String() string {
	switch k {
	case NoKnowledge:
		return "no"
	case GivenClustering:
		return "given clustering"
	case GivenViews:
		return "given views"
	default:
		return fmt.Sprintf("Knowledge(%d)", int(k))
	}
}

// Solutions describes how many clusterings the method produces.
type Solutions int

const (
	OneSolution Solutions = iota
	TwoSolutions
	ManySolutions
)

func (s Solutions) String() string {
	switch s {
	case OneSolution:
		return "m = 1"
	case TwoSolutions:
		return "m = 2"
	case ManySolutions:
		return "m >= 2"
	default:
		return fmt.Sprintf("Solutions(%d)", int(s))
	}
}

// ViewHandling describes how the method treats views/subspaces.
type ViewHandling int

const (
	NoViewHandling ViewHandling = iota
	DissimilarViews
	NoDissimilarity
	GivenViewsHandling
)

func (v ViewHandling) String() string {
	switch v {
	case NoViewHandling:
		return ""
	case DissimilarViews:
		return "dissimilarity"
	case NoDissimilarity:
		return "no dissimilarity"
	case GivenViewsHandling:
		return "given views"
	default:
		return fmt.Sprintf("ViewHandling(%d)", int(v))
	}
}

// Entry is one row of the taxonomy table.
type Entry struct {
	Algorithm    string // implementation name in this module
	Reference    string // the surveyed paper
	Space        SearchSpace
	Processing   Processing
	Knowledge    Knowledge
	Solutions    Solutions
	Views        ViewHandling
	Exchangeable bool   // true when the underlying cluster definition can be swapped
	Package      string // implementing package
}

// Registry returns the taxonomy rows for every algorithm implemented in the
// module, mirroring the tutorial's table (slide 116).
func Registry() []Entry {
	return []Entry{
		{"MetaClustering", "Caruana et al. 2006", OriginalSpace, IndependentProcessing, NoKnowledge, ManySolutions, NoViewHandling, true, "metaclust"},
		{"COALA", "Bae & Bailey 2006", OriginalSpace, IterativeProcessing, GivenClustering, TwoSolutions, NoViewHandling, false, "alternative"},
		{"CIB", "Gondek & Hofmann 2003/2004", OriginalSpace, IterativeProcessing, GivenClustering, TwoSolutions, NoViewHandling, false, "alternative"},
		{"MinCEntropy", "Vinh & Epps 2010", OriginalSpace, IterativeProcessing, GivenClustering, ManySolutions, NoViewHandling, false, "alternative"},
		{"CondEns", "Gondek & Hofmann 2005", OriginalSpace, IndependentProcessing, GivenClustering, TwoSolutions, NoViewHandling, true, "alternative"},
		{"Flexible", "this module (slide 27 made concrete)", OriginalSpace, IterativeProcessing, GivenClustering, ManySolutions, NoViewHandling, true, "alternative"},
		{"DecorrelatedKMeans", "Jain et al. 2008", OriginalSpace, SimultaneousProcessing, NoKnowledge, ManySolutions, NoViewHandling, false, "simultaneous"},
		{"CAMI", "Dang & Bailey 2010a", OriginalSpace, SimultaneousProcessing, NoKnowledge, ManySolutions, NoViewHandling, false, "simultaneous"},
		{"ContingencyUniformity", "Hossain et al. 2010", OriginalSpace, SimultaneousProcessing, NoKnowledge, TwoSolutions, NoViewHandling, false, "simultaneous"},
		{"MetricFlip", "Davidson & Qi 2008", TransformedSpace, IterativeProcessing, GivenClustering, TwoSolutions, DissimilarViews, true, "orthogonal"},
		{"AlternativeTransform", "Qi & Davidson 2009", TransformedSpace, IterativeProcessing, GivenClustering, TwoSolutions, DissimilarViews, true, "orthogonal"},
		{"OrthogonalProjections", "Cui et al. 2007", TransformedSpace, IterativeProcessing, GivenClustering, ManySolutions, DissimilarViews, true, "orthogonal"},
		{"CLIQUE", "Agrawal et al. 1998", SubspaceProjections, IndependentProcessing, NoKnowledge, ManySolutions, NoDissimilarity, false, "subspace"},
		{"SCHISM", "Sequeira & Zaki 2004", SubspaceProjections, IndependentProcessing, NoKnowledge, ManySolutions, NoDissimilarity, false, "subspace"},
		{"SUBCLU", "Kailing et al. 2004b", SubspaceProjections, IndependentProcessing, NoKnowledge, ManySolutions, NoDissimilarity, false, "subspace"},
		{"FIRES", "Kriegel et al. 2005", SubspaceProjections, IndependentProcessing, NoKnowledge, ManySolutions, NoDissimilarity, true, "subspace"},
		{"DUSC", "Assent et al. 2007", SubspaceProjections, IndependentProcessing, NoKnowledge, ManySolutions, NoDissimilarity, false, "subspace"},
		{"PROCLUS", "Aggarwal et al. 1999", SubspaceProjections, IndependentProcessing, NoKnowledge, OneSolution, NoDissimilarity, false, "subspace"},
		{"ORCLUS", "Aggarwal & Yu 2000", SubspaceProjections, IndependentProcessing, NoKnowledge, OneSolution, NoDissimilarity, false, "subspace"},
		{"PreDeCon", "Böhm et al. 2004a", SubspaceProjections, IndependentProcessing, NoKnowledge, OneSolution, NoDissimilarity, false, "subspace"},
		{"DOC", "Procopiuc et al. 2002", SubspaceProjections, IndependentProcessing, NoKnowledge, OneSolution, NoDissimilarity, false, "subspace"},
		{"MineClus", "Yiu & Mamoulis 2003", SubspaceProjections, IndependentProcessing, NoKnowledge, OneSolution, NoDissimilarity, false, "subspace"},
		{"ENCLUS", "Cheng et al. 1999", SubspaceProjections, IndependentProcessing, NoKnowledge, ManySolutions, NoDissimilarity, false, "subspace"},
		{"RIS", "Kailing et al. 2003", SubspaceProjections, IndependentProcessing, NoKnowledge, ManySolutions, NoDissimilarity, true, "subspace"},
		{"STATPC", "Moise & Sander 2008", SubspaceProjections, SimultaneousProcessing, NoKnowledge, ManySolutions, NoDissimilarity, false, "subspace"},
		{"RESCU", "Müller et al. 2009c", SubspaceProjections, SimultaneousProcessing, NoKnowledge, ManySolutions, NoDissimilarity, false, "subspace"},
		{"OSCLU", "Günnemann et al. 2009", SubspaceProjections, SimultaneousProcessing, NoKnowledge, ManySolutions, DissimilarViews, false, "subspace"},
		{"ASCLU", "Günnemann et al. 2010", SubspaceProjections, SimultaneousProcessing, GivenClustering, ManySolutions, DissimilarViews, false, "subspace"},
		{"MSC", "Niu & Dy 2010", SubspaceProjections, IndependentProcessing, NoKnowledge, ManySolutions, DissimilarViews, true, "multiview"},
		{"CoEM", "Bickel & Scheffer 2004", MultipleSources, SimultaneousProcessing, NoKnowledge, OneSolution, GivenViewsHandling, false, "multiview"},
		{"MVDBSCAN", "Kailing et al. 2004a", MultipleSources, SimultaneousProcessing, NoKnowledge, OneSolution, GivenViewsHandling, false, "multiview"},
		{"TwoViewSpectral", "de Sa 2005", MultipleSources, SimultaneousProcessing, NoKnowledge, OneSolution, GivenViewsHandling, false, "multiview"},
		{"RandomProjectionEnsemble", "Fern & Brodley 2003", MultipleSources, IndependentProcessing, NoKnowledge, OneSolution, NoDissimilarity, true, "multiview"},
		{"CSPA", "Strehl & Ghosh 2002", MultipleSources, IndependentProcessing, GivenViews, OneSolution, GivenViewsHandling, true, "multiview"},
		{"ParallelUniverses", "Wiswedel et al. 2010", MultipleSources, SimultaneousProcessing, NoKnowledge, ManySolutions, GivenViewsHandling, false, "multiview"},
		{"DistributedDBSCAN", "Januzaj et al. 2004", MultipleSources, SimultaneousProcessing, NoKnowledge, OneSolution, GivenViewsHandling, false, "multiview"},
	}
}

// Lookup returns the entry for the named algorithm.
func Lookup(name string) (Entry, bool) {
	for _, e := range Registry() {
		if strings.EqualFold(e.Algorithm, name) {
			return e, true
		}
	}
	return Entry{}, false
}

// BySpace groups the registry by search space in taxonomy order.
func BySpace() map[SearchSpace][]Entry {
	out := map[SearchSpace][]Entry{}
	for _, e := range Registry() {
		out[e.Space] = append(out[e.Space], e)
	}
	return out
}

// WriteTable renders the taxonomy table (the slide-116 comparison) to w.
func WriteTable(w io.Writer) error {
	entries := Registry()
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Space != entries[j].Space {
			return entries[i].Space < entries[j].Space
		}
		return entries[i].Algorithm < entries[j].Algorithm
	})
	if _, err := fmt.Fprintf(w, "%-26s %-26s %-12s %-13s %-17s %-7s %-17s %s\n",
		"algorithm", "reference", "space", "processing", "given knowledge", "#clust", "subspace detec.", "flexibility"); err != nil {
		return err
	}
	for _, e := range entries {
		flex := "specialized"
		if e.Exchangeable {
			flex = "exchang. def."
		}
		views := e.Views.String()
		if views == "" {
			views = "-"
		}
		if _, err := fmt.Fprintf(w, "%-26s %-26s %-12s %-13s %-17s %-7s %-17s %s\n",
			e.Algorithm, e.Reference, e.Space, e.Processing, e.Knowledge, e.Solutions, views, flex); err != nil {
			return err
		}
	}
	return nil
}
