package experiments

import (
	"strconv"
	"strings"
	"testing"

	"multiclust/internal/obs"
)

// Golden-shape regression harness. Every experiment E01-E21 gets one
// subtest asserting the "shape holds" claim recorded in EXPERIMENTS.md --
// who wins, in which direction the trade-off moves -- from the rendered
// table rows AND, where the algorithm traverses instrumented hot paths,
// from the observation counters and per-iteration series recorded by a
// fresh obs.Collector installed for the duration of the run. The
// counter assertions pin trajectories (iteration counts, candidate
// totals, agreement series), not just final scores, so a refactor that
// silently changes how an algorithm reaches its answer fails here even
// when the answer itself survives.

// goldenCheck ties an experiment id to its shape assertions.
type goldenCheck struct {
	id    string
	check func(t *testing.T, tbl *Table, c *obs.Collector)
}

func TestGoldenShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	for _, g := range goldenChecks {
		g := g
		t.Run(g.id, func(t *testing.T) {
			c := obs.NewCollector()
			prev := obs.Default()
			obs.SetDefault(c)
			defer obs.SetDefault(prev)
			tbl, err := Run(g.id)
			if err != nil {
				t.Fatalf("%s: %v", g.id, err)
			}
			g.check(t, tbl, c)
		})
	}
}

// TestGoldenCoversAllExperiments pins that the harness does not silently
// drop an experiment: every E-id in the registry has a golden check.
func TestGoldenCoversAllExperiments(t *testing.T) {
	covered := map[string]bool{}
	for _, g := range goldenChecks {
		if covered[g.id] {
			t.Errorf("duplicate golden check for %s", g.id)
		}
		covered[g.id] = true
	}
	for _, id := range IDs() {
		if strings.HasPrefix(id, "E") && !covered[id] {
			t.Errorf("experiment %s has no golden-shape check", id)
		}
	}
}

// gf parses a table cell as a float, failing the test on garbage.
func gf(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

// gi parses a table cell as an int.
func gi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("cell %q is not an integer: %v", s, err)
	}
	return v
}

// grow returns the first row whose leading cell starts with prefix.
func grow(t *testing.T, tbl *Table, prefix string) []string {
	t.Helper()
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], prefix) {
			return row
		}
	}
	t.Fatalf("%s: no row starting with %q in %v", tbl.ID, prefix, tbl.Rows)
	return nil
}

// sumSeries adds up the values of a recorded observation series.
func sumSeries(samples []obs.Sample) float64 {
	var s float64
	for _, smp := range samples {
		s += smp.Value
	}
	return s
}

var goldenChecks = []goldenCheck{
	{"E01", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Alternative/simultaneous methods recover the vertical view a
		// single run cannot express; DecKMeans returns both at once.
		for _, prefix := range []string{"COALA", "CIB", "DecKMeans solution 1"} {
			row := grow(t, tbl, prefix)
			if giv, alt := gf(t, row[1]), gf(t, row[2]); alt < 0.9 || giv > 0.1 {
				t.Errorf("%s: alternative %v / given %v, want >=0.9 / <=0.1", prefix, alt, giv)
			}
		}
		row := grow(t, tbl, "DecKMeans solution 2")
		if giv, alt := gf(t, row[1]), gf(t, row[2]); giv < 0.9 || alt > 0.1 {
			t.Errorf("DecKMeans solution 2 should cover the given view: %v", row)
		}
		if c.Counter("parallel.tasks") == 0 {
			t.Error("no parallel tasks recorded; distance matrices should run through internal/parallel")
		}
	}},
	{"E02", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Small w buys dissimilarity merges and distance from the given
		// clustering; large w collapses onto it.
		first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
		if dFirst, dLast := gi(t, first[2]), gi(t, last[2]); dFirst <= dLast || dLast != 0 {
			t.Errorf("dissimilarity merges should fall from %d to 0, got %d -> %d", dFirst, dFirst, dLast)
		}
		if rFirst, rLast := gf(t, first[4]), gf(t, last[4]); rFirst < 0.3 || rLast > 0.05 {
			t.Errorf("1-Rand vs given should fall from >=0.3 to ~0, got %v -> %v", rFirst, rLast)
		}
		if wFirst, wLast := gf(t, first[3]), gf(t, last[3]); wLast >= wFirst {
			t.Errorf("within-distance should shrink as quality merges take over: %v -> %v", wFirst, wLast)
		}
	}},
	{"E03", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// With sufficient lambda both views are covered with independent
		// labels (restart selection keeps even tiny lambda honest).
		for _, row := range tbl.Rows {
			if lam := gf(t, row[0]); lam >= 0.1 {
				if nmi, cov := gf(t, row[1]), gf(t, row[2]); nmi > 0.05 || cov < 0.9 {
					t.Errorf("lambda/n=%v: NMI %v coverage %v, want <=0.05 / >=0.9", lam, nmi, cov)
				}
			}
		}
	}},
	{"E04", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// mu=0 leaves the mixtures correlated; mu>=1 drives soft MI to
		// zero and covers both views at modest likelihood cost.
		base := grow(t, tbl, "0")
		if mi := gf(t, base[2]); mi < 0.3 {
			t.Errorf("mu=0 soft MI %v, want correlated (>=0.3)", mi)
		}
		var llBase, llPen float64
		llBase = gf(t, base[1])
		for _, row := range tbl.Rows[1:] {
			if mi, cov := gf(t, row[2]), gf(t, row[3]); mi > 0.01 || cov < 0.9 {
				t.Errorf("mu=%s: MI %v coverage %v, want decorrelated and covered", row[0], mi, cov)
			}
			llPen = gf(t, row[1])
		}
		if cost := (llBase - llPen) / -llBase; cost < 0 || cost > 0.15 {
			t.Errorf("likelihood cost %.3f, want a modest 0..15%% sacrifice", cost)
		}
		// CAMI's restarts initialise via k-means: the recorded trajectory
		// must show the restarts and one SSE observation per iteration.
		iters := c.Counter("kmeans.iterations")
		if iters == 0 || c.Counter("kmeans.restarts") == 0 {
			t.Error("no k-means activity recorded for CAMI initialisation")
		}
		if got := len(c.Series("kmeans.sse")); int64(got) != iters {
			t.Errorf("kmeans.sse series has %d points, want one per iteration (%d)", got, iters)
		}
	}},
	{"E05", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Uniform contingency table with independent labels at every gamma.
		for _, row := range tbl.Rows {
			if u, nmi, cov := gf(t, row[1]), gf(t, row[2]), gf(t, row[3]); u < 0.99 || nmi > 0.01 || cov < 0.99 {
				t.Errorf("gamma=%s: uniformity %v NMI %v coverage %v", row[0], u, nmi, cov)
			}
		}
	}},
	{"E06", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Any algorithm after the flip finds the alternative, not the given.
		for _, prefix := range []string{"re-cluster", "cluster flipped"} {
			row := grow(t, tbl, prefix)
			if giv, alt := gf(t, row[1]), gf(t, row[2]); alt < 0.9 || giv > 0.1 {
				t.Errorf("%s: ARI given %v / alternative %v", prefix, giv, alt)
			}
		}
		if ratio := gf(t, grow(t, tbl, "learned-metric")[1]); ratio <= 1 {
			t.Errorf("learned-metric stretch ratio %v, want > 1", ratio)
		}
		// The SVD stretch runs through the Jacobi eigensolver.
		if c.Counter("linalg.eigen_sweeps") == 0 {
			t.Error("no eigen sweeps recorded; the metric stretch should use linalg.SymEigen")
		}
		if c.Counter("kmeans.iterations") == 0 {
			t.Error("no k-means iterations recorded")
		}
	}},
	{"E07", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// The transform loosens the old clusters and reveals the hidden view.
		before := gf(t, grow(t, tbl, "old clustering rel. tightness before")[1])
		after := gf(t, grow(t, tbl, "old clustering rel. tightness after")[1])
		if after <= before {
			t.Errorf("relative tightness should rise after the transform: %v -> %v", before, after)
		}
		if ari := gf(t, grow(t, tbl, "alternative ARI vs hidden")[1]); ari < 0.9 {
			t.Errorf("alternative ARI vs hidden view %v, want >=0.9", ari)
		}
		if ari := gf(t, grow(t, tbl, "alternative ARI vs given")[1]); ari > 0.1 {
			t.Errorf("alternative ARI vs given %v, want ~0", ari)
		}
		if c.Counter("linalg.eigen_sweeps") == 0 {
			t.Error("no eigen sweeps recorded; Sigma^(-1/2) needs the eigensolver")
		}
	}},
	{"E08", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Round 1 captures the dominant view, round 2 the weak one, and
		// the residual-variance stop fires after exactly two rounds.
		if len(tbl.Rows) != 2 {
			t.Fatalf("orthogonal projection should stop itself after 2 rounds, got %d", len(tbl.Rows))
		}
		r1, r2 := tbl.Rows[0], tbl.Rows[1]
		if a, b := gf(t, r1[1]), gf(t, r1[2]); a < 0.9 || b > 0.1 {
			t.Errorf("round 1 should cover view 1 only: %v", r1)
		}
		if a, b := gf(t, r2[1]), gf(t, r2[2]); b < 0.9 || a > 0.1 {
			t.Errorf("round 2 should cover view 2 only: %v", r2)
		}
		if v1, v2 := gf(t, r1[3]), gf(t, r2[3]); v2 >= v1/2 {
			t.Errorf("residual variance should collapse between rounds: %v -> %v", v1, v2)
		}
		// One k-means run per round, eigensolver used for each projection.
		if spans := c.Snapshot().Spans["kmeans.run"]; spans.Count != 2 {
			t.Errorf("recorded %d kmeans.run spans, want one per round (2)", spans.Count)
		}
		if c.Counter("linalg.eigen_sweeps") < 2 {
			t.Error("each round should run at least one eigen sweep")
		}
	}},
	{"E09", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Distance contrast decreases strictly with dimensionality.
		prev := 1e18
		for _, row := range tbl.Rows {
			v := gf(t, row[1])
			if v >= prev {
				t.Fatalf("contrast not strictly decreasing: %v", tbl.Rows)
			}
			prev = v
		}
		if prev > 0.5 {
			t.Errorf("contrast at the largest d is %v, want near zero", prev)
		}
	}},
	{"E10", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Apriori explores a vanishing fraction of the naive lattice and
		// still recovers the planted clusters.
		var tableCandidates int64
		for _, row := range tbl.Rows {
			naive, cand := gf(t, row[1]), gf(t, row[2])
			if cand/naive > 1e-2 {
				t.Errorf("d=%s: %v candidates vs %v naive cells; pruning ineffective", row[0], cand, naive)
			}
			if f1 := gf(t, row[5]); f1 < 0.8 {
				t.Errorf("d=%s: F1 %v, want planted clusters recovered (>=0.8)", row[0], f1)
			}
			tableCandidates += int64(cand)
		}
		// The table and the recorder must agree on the work done: one
		// lattice search per d, candidate totals matching exactly, and a
		// per-level candidate series that ends exhausted (0 candidates).
		if got := c.Counter("subspace.grid.searches"); got != int64(len(tbl.Rows)) {
			t.Errorf("%d lattice searches recorded, want %d", got, len(tbl.Rows))
		}
		if got := c.Counter("subspace.grid.candidates"); got != tableCandidates {
			t.Errorf("recorder counted %d candidates, table reports %d", got, tableCandidates)
		}
		levels := c.Series("subspace.grid.level_candidates")
		if len(levels) < 2 {
			t.Fatalf("level_candidates series has %d points, want a multi-level trajectory", len(levels))
		}
		if last := levels[len(levels)-1].Value; last != 0 {
			t.Errorf("deepest level still generated %v candidates; search should run to exhaustion", last)
		}
		if c.Counter("subspace.grid.dense_units") == 0 {
			t.Error("no dense units recorded")
		}
	}},
	{"E11", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// SCHISM's threshold decreases with dimensionality and reaches the
		// 5D cluster; fixed-threshold CLIQUE starves above 1D.
		prev := 2.0
		for _, row := range tbl.Rows {
			if _, err := strconv.Atoi(row[0]); err != nil {
				continue // summary rows
			}
			tau := gf(t, row[1])
			if tau >= prev {
				t.Errorf("tau(s) not decreasing at s=%s: %v >= %v", row[0], tau, prev)
			}
			prev = tau
		}
		if dim := gi(t, grow(t, tbl, "SCHISM best")[1]); dim < 5 {
			t.Errorf("SCHISM best matching dimensionality %d, want >=5", dim)
		}
		if dim := gi(t, grow(t, tbl, "fixed-threshold")[1]); dim != 1 {
			t.Errorf("fixed-threshold CLIQUE best dimensionality %d, want starved at 1", dim)
		}
		if got := c.Counter("subspace.grid.searches"); got != 2 {
			t.Errorf("%d lattice searches recorded, want 2 (SCHISM + CLIQUE)", got)
		}
	}},
	{"E12", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// SUBCLU keeps the ring whole where grid cells fragment it; the
		// cost shows up as per-object neighborhood lookups.
		sub, clq := grow(t, tbl, "SUBCLU"), grow(t, tbl, "CLIQUE")
		if s, q := gi(t, sub[1]), gi(t, clq[1]); s <= q {
			t.Errorf("SUBCLU largest {0,1} cluster %d should beat CLIQUE's %d", s, q)
		}
		if c.Counter("subspace.subclu.runs") != 1 {
			t.Error("want exactly one SUBCLU run recorded")
		}
		examined := c.Counter("subspace.subclu.subspaces_examined")
		clustered := c.Counter("subspace.subclu.subspaces_clustered")
		if examined == 0 || clustered > examined {
			t.Errorf("subspaces examined %d / clustered %d: impossible trajectory", examined, clustered)
		}
		// Density costs distance work: every object queried at least once
		// per subspace DBSCAN pass.
		if lookups := c.Counter("dbscan.neighborhood_lookups"); lookups == 0 {
			t.Error("no DBSCAN neighborhood lookups recorded; SUBCLU's cost is invisible")
		}
		if levels := c.Series("subspace.subclu.level_examined"); len(levels) < 2 {
			t.Errorf("SUBCLU examined only %d lattice levels, want a multi-level climb", len(levels))
		}
	}},
	{"E13", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Selection shrinks the redundant raw result while keeping F1;
		// RESCU (object overlap only) prunes hardest.
		byD := map[string]map[string][]string{}
		for _, row := range tbl.Rows {
			if byD[row[0]] == nil {
				byD[row[0]] = map[string][]string{}
			}
			byD[row[0]][row[1]] = row
		}
		for d, methods := range byD {
			all, ok := methods["CLIQUE (ALL)"]
			if !ok {
				t.Fatalf("d=%s: no CLIQUE (ALL) baseline row", d)
			}
			allClusters, allF1 := gi(t, all[2]), gf(t, all[4])
			for name, row := range methods {
				if name == "CLIQUE (ALL)" {
					continue
				}
				if n := gi(t, row[2]); n > allClusters {
					t.Errorf("d=%s %s: %d clusters exceeds the raw result's %d", d, name, n, allClusters)
				}
				if f1 := gf(t, row[4]); allF1-f1 > 0.1 {
					t.Errorf("d=%s %s: F1 %v lost more than 0.1 vs ALL's %v", d, name, f1, allF1)
				}
			}
			rescuRow, ok := methods["RESCU-lite"]
			if !ok {
				t.Fatalf("d=%s: no RESCU-lite row", d)
			}
			if rescu := gi(t, rescuRow[2]); rescu >= allClusters {
				t.Errorf("d=%s: RESCU should prune aggressively, got %d vs ALL %d", d, rescu, allClusters)
			}
		}
	}},
	{"E14", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// OSCLU selection returns fewer, less redundant clusters than the
		// unfiltered pool at comparable F1.
		all := tbl.Rows[len(tbl.Rows)-1]
		if all[0] != "-" {
			t.Fatalf("last row should be the unfiltered pool, got %v", all)
		}
		allSel, allRed, allF1 := gi(t, all[2]), gf(t, all[3]), gf(t, all[4])
		for _, row := range tbl.Rows[:len(tbl.Rows)-1] {
			if n := gi(t, row[2]); n >= allSel {
				t.Errorf("alpha=%s beta=%s: selected %d not below pool size %d", row[0], row[1], n, allSel)
			}
			if r := gf(t, row[3]); r > allRed {
				t.Errorf("alpha=%s beta=%s: redundancy %v above the pool's %v", row[0], row[1], r, allRed)
			}
			if f1 := gf(t, row[4]); allF1-f1 > 0.1 {
				t.Errorf("alpha=%s beta=%s: F1 %v lost more than 0.1 vs pool %v", row[0], row[1], f1, allF1)
			}
		}
	}},
	{"E15", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// ASCLU rejects re-descriptions of the Known concept and returns
		// the hidden alternative.
		cand := gi(t, grow(t, tbl, "candidates")[1])
		sel := gi(t, grow(t, tbl, "valid alternatives")[1])
		if sel < 1 || sel >= cand {
			t.Errorf("selected %d of %d candidates; selection should filter but not empty", sel, cand)
		}
		if f1 := gf(t, grow(t, tbl, "best F1 vs KNOWN")[1]); f1 > 0.05 {
			t.Errorf("best F1 vs Known %v, want re-descriptions rejected (~0)", f1)
		}
		if f1 := gf(t, grow(t, tbl, "best F1 vs hidden")[1]); f1 < 0.5 {
			t.Errorf("best F1 vs hidden alternative %v, want the hidden concept found", f1)
		}
	}},
	{"E16", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// The planted subspace [0 1] has the lowest entropy of the 2D level.
		if tbl.Rows[0][0] != "[0 1]" {
			t.Fatalf("planted subspace should rank first by entropy, got %v", tbl.Rows[0])
		}
		planted := gf(t, tbl.Rows[0][1])
		for _, row := range tbl.Rows[1:] {
			if strings.HasPrefix(row[0], "RIS") {
				continue
			}
			if e := gf(t, row[1]); e <= planted {
				t.Errorf("noise subspace %s entropy %v not above planted %v", row[0], e, planted)
			}
		}
		grow(t, tbl, "RIS top") // the redundancy-motif row must be present
	}},
	{"E17", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Two spectral views, each matching its own truth and independent
		// of the other; the HSIC penalty stays small.
		v1, v2 := tbl.Rows[0], tbl.Rows[1]
		if a, b := gf(t, v1[2]), gf(t, v1[3]); a < 0.9 || b > 0.1 {
			t.Errorf("view 1 should match truth-view1 only: %v", v1)
		}
		if a, b := gf(t, v2[2]), gf(t, v2[3]); b < 0.9 || a > 0.1 {
			t.Errorf("view 2 should match truth-view2 only: %v", v2)
		}
		if h := gf(t, v2[4]); h > 0.1 {
			t.Errorf("cross-view HSIC %v, want near-independent views (<=0.1)", h)
		}
		if got := c.Counter("spectral.embeddings"); got != 2 {
			t.Errorf("%d spectral embeddings recorded, want one per view (2)", got)
		}
		if c.Counter("linalg.eigen_sweeps") == 0 {
			t.Error("no eigen sweeps recorded for the spectral embeddings")
		}
	}},
	{"E18", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// co-EM keeps the views agreeing round over round and its final
		// parameters warm-start a single view exactly as well as cold EM.
		for _, row := range tbl.Rows {
			if _, err := strconv.Atoi(row[0]); err != nil {
				continue // summary rows
			}
			if a := gf(t, row[3]); a < 0.9 {
				t.Errorf("round %s agreement %v, want >=0.9 throughout", row[0], a)
			}
		}
		warm := gf(t, grow(t, tbl, "single-view warm-started")[1])
		cold := gf(t, grow(t, tbl, "single-view cold EM")[1])
		if warm < cold-1e-6 {
			t.Errorf("warm-started logL %v worse than cold EM %v", warm, cold)
		}
		if ari := gf(t, grow(t, tbl, "consensus ARI")[1]); ari < 0.99 {
			t.Errorf("consensus ARI %v, want 1.00", ari)
		}
		// The recorded trajectory must cover every round: one agreement
		// and one per-view likelihood observation per co-EM round, and
		// the cap must never be exceeded.
		rounds := c.Counter("coem.rounds")
		if rounds == 0 || rounds > 30 {
			t.Fatalf("coem.rounds %d, want 1..30 (iteration cap)", rounds)
		}
		agree := c.Series("coem.agreement")
		if int64(len(agree)) != rounds {
			t.Errorf("agreement series has %d points for %d rounds", len(agree), rounds)
		}
		for _, s := range agree {
			if s.Value < 0.9 {
				t.Errorf("round %d recorded agreement %v, want >=0.9", s.Iter, s.Value)
			}
		}
		if la, lb := c.Series("coem.loglik_a"), c.Series("coem.loglik_b"); int64(len(la)) != rounds || int64(len(lb)) != rounds {
			t.Errorf("per-view likelihood series %d/%d points for %d rounds", len(la), len(lb), rounds)
		}
		// Three single-view EM fits: warm, cold, and the consensus check.
		if fits := c.Snapshot().Spans["em.fit"]; fits.Count != 3 {
			t.Errorf("%d em.fit spans recorded, want 3 (warm + cold + consensus)", fits.Count)
		}
	}},
	{"E19", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Union suits sparse views (full recall, no noise); intersection
		// suits unreliable views (purity over coverage).
		rows := map[string][]string{}
		for _, row := range tbl.Rows {
			rows[row[0]+"/"+row[1]] = row
		}
		su, si := rows["sparse views/union"], rows["sparse views/intersection"]
		if ari, noise := gf(t, su[3]), gi(t, su[4]); ari < 0.99 || noise != 0 {
			t.Errorf("sparse union ARI %v noise %d, want 1.00 / 0", ari, noise)
		}
		if nu, ni := gi(t, su[4]), gi(t, si[4]); ni <= nu+50 {
			t.Errorf("sparse intersection should drown in noise: %d vs union's %d", ni, nu)
		}
		uu, ui := rows["unreliable view/union"], rows["unreliable view/intersection"]
		if pu, pi := gf(t, uu[2]), gf(t, ui[2]); pi <= pu {
			t.Errorf("unreliable: intersection purity %v must beat union %v", pi, pu)
		}
		// Four DBSCAN passes over 400 objects each: the recorder sees the
		// region queries the multi-represented runs issue.
		if q := c.Counter("dbscan.region_queries"); q == 0 {
			t.Error("no DBSCAN region queries recorded")
		}
		if c.Counter("dbscan.clusters") == 0 {
			t.Error("no DBSCAN clusters recorded")
		}
	}},
	{"E20", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Consensus over the random-projection ensemble is at least as
		// good as the best single run and beats the mean.
		worst := gf(t, grow(t, tbl, "worst individual")[1])
		mean := gf(t, grow(t, tbl, "mean individual")[1])
		best := gf(t, grow(t, tbl, "best individual")[1])
		cons := gf(t, grow(t, tbl, "consensus over")[1])
		if !(worst <= mean && mean <= best) {
			t.Errorf("individual run summary not ordered: %v <= %v <= %v", worst, mean, best)
		}
		if cons < best || cons < 0.99 {
			t.Errorf("consensus ARI %v, want >= best individual %v and ~1.00", cons, best)
		}
		if worst >= cons {
			t.Errorf("single projections should be unstable: worst %v not below consensus %v", worst, cons)
		}
		// One EM fit and one k-means run per ensemble member, and the EM
		// likelihood trajectory must be recorded per iteration.
		spans := c.Snapshot().Spans
		if spans["em.fit"].Count == 0 || spans["em.fit"].Count != spans["kmeans.run"].Count {
			t.Errorf("ensemble spans em.fit=%d kmeans.run=%d, want equal and positive",
				spans["em.fit"].Count, spans["kmeans.run"].Count)
		}
		ll := c.Series("em.loglik")
		if int64(len(ll)) != c.Counter("em.iterations") {
			t.Errorf("em.loglik series %d points vs %d iterations", len(ll), c.Counter("em.iterations"))
		}
	}},
	{"E21", func(t *testing.T, tbl *Table, c *obs.Collector) {
		// Blind generation yields near-duplicates; meta grouping extracts
		// few representatives covering both views. Table and recorder must
		// agree on the ensemble size and representative count.
		base := gi(t, grow(t, tbl, "base solutions")[1])
		reps := gi(t, grow(t, tbl, "meta clusters")[1])
		if dup := gi(t, grow(t, tbl, "near-duplicate")[1]); dup == 0 {
			t.Error("blind generation produced no near-duplicate pairs; the motivation collapses")
		}
		if reps >= base/2 {
			t.Errorf("%d representatives from %d solutions; grouping barely compressed", reps, base)
		}
		if h := gf(t, grow(t, tbl, "best representative ARI vs horizontal")[1]); h < 0.9 {
			t.Errorf("horizontal view not covered by any representative: %v", h)
		}
		if v := gf(t, grow(t, tbl, "best representative ARI vs vertical")[1]); v < 0.9 {
			t.Errorf("vertical view not covered by any representative: %v", v)
		}
		if got := c.Counter("metaclust.base_solutions"); got != int64(base) {
			t.Errorf("recorder saw %d base solutions, table reports %d", got, base)
		}
		if got := c.Counter("metaclust.representatives"); got != int64(reps) {
			t.Errorf("recorder saw %d representatives, table reports %d", got, reps)
		}
		mp, ok := c.GaugeValue("metaclust.mean_pairwise")
		if !ok {
			t.Fatal("mean pairwise dissimilarity gauge missing")
		}
		if tableMP := gf(t, grow(t, tbl, "mean pairwise")[1]); mp < tableMP-0.01 || mp > tableMP+0.01 {
			t.Errorf("gauge mean_pairwise %v disagrees with table %v", mp, tableMP)
		}
		if restarts := c.Counter("kmeans.restarts"); restarts < int64(base) {
			t.Errorf("only %d k-means restarts recorded for %d base solutions", restarts, base)
		}
	}},
}
