package experiments

import (
	"fmt"
	"math"

	"multiclust/internal/alternative"
	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/metaclust"
	"multiclust/internal/metrics"
	"multiclust/internal/simultaneous"
)

func init() {
	register("E01", E01ToyAlternatives)
	register("E02", E02CoalaTradeoff)
	register("E03", E03DecKMeans)
	register("E04", E04CAMI)
	register("E05", E05Contingency)
	register("E21", E21Meta)
}

// E01ToyAlternatives regenerates slide 26: the four-blob toy admits two
// meaningful 2-partitions; one representative method per paradigm recovers
// the alternative while traditional k-means commits to a single view.
func E01ToyAlternatives() (*Table, error) {
	ds, hor, ver := dataset.FourBlobToy(1, 25)
	given := core.NewClustering(hor)
	t := &Table{
		ID: "E01", Slides: "26",
		Title:   "one toy dataset, two meaningful 2-partitions",
		Columns: []string{"method", "ARI vs horizontal", "ARI vs vertical"},
	}
	add := func(name string, labels []int) {
		t.Rows = append(t.Rows, []string{name,
			f2(metrics.AdjustedRand(hor, labels)), f2(metrics.AdjustedRand(ver, labels))})
	}
	coala, err := alternative.Coala(ds.Points, given, alternative.CoalaConfig{K: 2})
	if err != nil {
		return nil, err
	}
	add("COALA(given=horizontal)", coala.Clustering.Labels)
	cib, err := alternative.CIB(ds.Points, given, alternative.CIBConfig{K: 2, Beta: 10, Bins: 4, Seed: 3})
	if err != nil {
		return nil, err
	}
	add("CIB(given=horizontal)", cib.Clustering.Labels)
	dec, err := simultaneous.DecKMeans(ds.Points, simultaneous.DecKMeansConfig{Ks: []int{2, 2}, Seed: 2})
	if err != nil {
		return nil, err
	}
	add("DecKMeans solution 1", dec.Clusterings[0].Labels)
	add("DecKMeans solution 2", dec.Clusterings[1].Labels)
	t.Notes = append(t.Notes,
		"claim: alternative/simultaneous methods recover the second view a single run cannot express")
	return t, nil
}

// E02CoalaTradeoff regenerates slides 31-33: COALA's w parameter trades
// cluster quality against dissimilarity to the given clustering. The blobs
// are placed asymmetrically (vertical gap 0.4 vs horizontal gap 1.0) so the
// alternative really is the lower-quality solution and the trade-off bites.
func E02CoalaTradeoff() (*Table, error) {
	centers := [][]float64{{0, 0}, {1, 0}, {0, 0.4}, {1, 0.4}}
	ds, blob := dataset.GaussianBlobs(2, 100, centers, 0.05)
	hor := make([]int, len(blob)) // 0 = left column, 1 = right column
	for i, b := range blob {
		hor[i] = b % 2
	}
	given := core.NewClustering(hor)
	t := &Table{
		ID: "E02", Slides: "31-33",
		Title:   "COALA quality-vs-dissimilarity trade-off over w",
		Columns: []string{"w", "quality merges", "diss merges", "avg within-dist", "1-Rand vs given"},
	}
	for _, w := range []float64{0.01, 0.1, 0.5, 1, 2, 10, 100} {
		res, err := alternative.Coala(ds.Points, given, alternative.CoalaConfig{K: 2, W: w})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", w),
			d0(res.QualityMerges), d0(res.DissimilarityMerges),
			f3(metrics.AverageWithinDistance(ds.Points, res.Clustering, euclid)),
			f3(1 - metrics.RandIndex(hor, res.Clustering.Labels)),
		})
	}
	t.Notes = append(t.Notes,
		"claim: large w prefers quality merges, small w dissimilarity merges (slide 33)")
	return t, nil
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// E03DecKMeans regenerates slides 40-42: lambda controls the trade between
// compactness and representative orthogonality; the resulting labelings
// become independent.
func E03DecKMeans() (*Table, error) {
	ds, hor, ver := dataset.FourBlobToy(3, 25)
	n := float64(ds.N())
	t := &Table{
		ID: "E03", Slides: "40-42",
		Title:   "decorrelated k-means over lambda",
		Columns: []string{"lambda/n", "NMI(sol1,sol2)", "views covered", "objective"},
	}
	for _, frac := range []float64{1e-9, 0.1, 0.5, 1, 2, 5} {
		res, err := simultaneous.DecKMeans(ds.Points, simultaneous.DecKMeansConfig{
			Ks: []int{2, 2}, Lambda: frac * n, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		l0, l1 := res.Clusterings[0].Labels, res.Clusterings[1].Labels
		covered := math.Max(
			math.Min(metrics.AdjustedRand(hor, l0), metrics.AdjustedRand(ver, l1)),
			math.Min(metrics.AdjustedRand(ver, l0), metrics.AdjustedRand(hor, l1)))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", frac), f3(metrics.NMI(l0, l1)), f2(covered), f2(res.Objective),
		})
	}
	t.Notes = append(t.Notes,
		"claim: with sufficient lambda both hidden views are recovered with independent labels (slide 41)")
	return t, nil
}

// E04CAMI regenerates slide 43: likelihood stays high while the mutual
// information between the two mixtures is driven toward zero as mu grows.
func E04CAMI() (*Table, error) {
	ds, hor, ver := dataset.FourBlobToy(2, 30)
	t := &Table{
		ID: "E04", Slides: "43",
		Title:   "CAMI likelihood vs mutual-information penalty",
		Columns: []string{"mu", "logL1+logL2", "soft MI", "views covered"},
	}
	for _, mu := range []float64{0, 1, 2, 5, 10} {
		res, err := simultaneous.CAMI(ds.Points, simultaneous.CAMIConfig{K1: 2, K2: 2, Mu: mu, Seed: 1})
		if err != nil {
			return nil, err
		}
		covered := math.Min(
			math.Max(metrics.AdjustedRand(hor, res.Clustering1.Labels), metrics.AdjustedRand(hor, res.Clustering2.Labels)),
			math.Max(metrics.AdjustedRand(ver, res.Clustering1.Labels), metrics.AdjustedRand(ver, res.Clustering2.Labels)))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", mu), f2(res.LogLik1 + res.LogLik2), f3(res.MutualInfo), f2(covered),
		})
	}
	t.Notes = append(t.Notes,
		"claim: mu > 0 decorrelates the two mixture clusterings at modest likelihood cost")
	return t, nil
}

// E05Contingency regenerates slide 44: alternating prototype optimization
// drives the contingency table toward uniformity while prototypes keep the
// clusterings meaningful.
func E05Contingency() (*Table, error) {
	ds, hor, ver := dataset.FourBlobToy(3, 20)
	t := &Table{
		ID: "E05", Slides: "44",
		Title:   "contingency-table uniformity vs gamma",
		Columns: []string{"gamma", "uniformity", "NMI(sol1,sol2)", "views covered"},
	}
	for _, gamma := range []float64{0.01, 0.5, 2, 8} {
		res, err := simultaneous.Contingency(ds.Points, simultaneous.ContingencyConfig{
			K1: 2, K2: 2, Gamma: gamma, Seed: 2,
		})
		if err != nil {
			return nil, err
		}
		covered := math.Min(
			math.Max(metrics.AdjustedRand(hor, res.Clustering1.Labels), metrics.AdjustedRand(hor, res.Clustering2.Labels)),
			math.Max(metrics.AdjustedRand(ver, res.Clustering1.Labels), metrics.AdjustedRand(ver, res.Clustering2.Labels)))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", gamma), f3(res.Uniformity),
			f3(metrics.NMI(res.Clustering1.Labels, res.Clustering2.Labels)), f2(covered),
		})
	}
	t.Notes = append(t.Notes,
		"claim: maximizing uniformity with prototype quality yields two disparate but meaningful clusterings")
	return t, nil
}

// E21Meta regenerates slide 29: blind generation produces many near-
// duplicate solutions; meta-level grouping extracts the few distinct ones.
func E21Meta() (*Table, error) {
	ds, hor, ver := dataset.FourBlobToy(1, 30)
	res, err := metaclust.Run(ds.Points, metaclust.Config{K: 2, NumSolutions: 30, MetaClusters: 3, Seed: 1})
	if err != nil {
		return nil, err
	}
	dups := 0
	for i := 0; i < len(res.Generated); i++ {
		for j := i + 1; j < len(res.Generated); j++ {
			if metrics.RandIndex(res.Generated[i].Labels, res.Generated[j].Labels) > 0.99 {
				dups++
			}
		}
	}
	t := &Table{
		ID: "E21", Slides: "29",
		Title:   "meta clustering: blind generation vs meta-level grouping",
		Columns: []string{"quantity", "value"},
		Rows: [][]string{
			{"base solutions generated", d0(len(res.Generated))},
			{"near-duplicate pairs (Rand>0.99)", d0(dups)},
			{"mean pairwise dissimilarity", f3(res.MeanPairwise)},
			{"meta clusters / representatives", d0(len(res.Representatives))},
		},
	}
	bestHor, bestVer := 0.0, 0.0
	for _, r := range res.Representatives {
		if a := metrics.AdjustedRand(hor, r.Labels); a > bestHor {
			bestHor = a
		}
		if a := metrics.AdjustedRand(ver, r.Labels); a > bestVer {
			bestVer = a
		}
	}
	t.Rows = append(t.Rows,
		[]string{"best representative ARI vs horizontal", f2(bestHor)},
		[]string{"best representative ARI vs vertical", f2(bestVer)})
	t.Notes = append(t.Notes,
		"claim: undirected generation risks highly similar clusterings; grouping exposes the distinct views (slide 29)")
	return t, nil
}
