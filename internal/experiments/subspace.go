package experiments

import (
	"fmt"
	"time"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
	"multiclust/internal/subspace"
)

func init() {
	register("E10", E10Clique)
	register("E11", E11Schism)
	register("E12", E12Subclu)
	register("E13", E13Redundancy)
	register("E14", E14Osclu)
	register("E15", E15Asclu)
	register("E16", E16Enclus)
}

// twoConceptData builds the standard subspace benchmark: two clusters in
// disjoint 2D subspaces of a d-dimensional uniform-noise dataset.
func twoConceptData(seed int64, n, d int) (*dataset.Dataset, core.SubspaceClustering, error) {
	return dataset.SubspaceData(seed, n, d, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: n * 3 / 10, Width: 0.08},
		{Dims: []int{3, 4}, Size: n / 4, Width: 0.08},
	})
}

// E10Clique regenerates slides 69-71: apriori pruning makes the lattice
// search tractable without losing dense units.
func E10Clique() (*Table, error) {
	t := &Table{
		ID: "E10", Slides: "69-71",
		Title:   "CLIQUE lattice search and apriori pruning",
		Columns: []string{"d", "naive cells", "candidates counted", "pruned", "dense units", "F1"},
	}
	for _, d := range []int{6, 8, 10, 12} {
		ds, truth, err := twoConceptData(1, 200, d)
		if err != nil {
			return nil, err
		}
		res, err := subspace.Clique(ds.Points, subspace.CliqueConfig{Xi: 10, Tau: 0.08})
		if err != nil {
			return nil, err
		}
		// The naive search would count every cell of every subspace:
		// sum over subspace sizes s of C(d,s)*xi^s = (xi+1)^d - 1.
		naive := pow(11, d) - 1
		t.Rows = append(t.Rows, []string{
			d0(d), fmt.Sprintf("%.1e", float64(naive)),
			d0(res.Stats.CandidatesGenerated), d0(res.Stats.CandidatesPruned),
			d0(res.Stats.DenseUnits),
			f2(metrics.SubspaceF1(truth, res.Clusters)),
		})
	}
	t.Notes = append(t.Notes,
		"claim: monotonicity prunes the exponential lattice without loss of dense units (slide 71)")
	return t, nil
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// E11Schism regenerates slides 72-73: the decreasing threshold tau(s)
// recovers the high-dimensional cluster a fixed threshold starves.
func E11Schism() (*Table, error) {
	ds, truth, err := dataset.SubspaceData(1, 400, 8, []dataset.SubspaceSpec{
		{Dims: []int{0, 1, 2, 3, 4}, Size: 100, Width: 0.08},
	})
	if err != nil {
		return nil, err
	}
	schism, err := subspace.Schism(ds.Points, subspace.SchismConfig{Xi: 2, Tau: 0.01, MaxDim: 5})
	if err != nil {
		return nil, err
	}
	clique, err := subspace.Clique(ds.Points, subspace.CliqueConfig{Xi: 2, Tau: schism.Threshold(1), MaxDim: 5})
	if err != nil {
		return nil, err
	}
	bestDim := func(m []subspace.GridCluster) int {
		best := 0
		for _, c := range m {
			if float64(c.SharedObjects(truth[0]))/float64(truth[0].Size()) > 0.8 && len(c.Dims) > best {
				best = len(c.Dims)
			}
		}
		return best
	}
	t := &Table{
		ID: "E11", Slides: "72-73",
		Title:   "SCHISM decreasing threshold vs fixed threshold",
		Columns: []string{"s", "tau(s) fraction", "required objects (n=400)"},
	}
	for s := 1; s <= 5; s++ {
		t.Rows = append(t.Rows, []string{
			d0(s), f3(schism.Threshold(s)), d0(int(schism.Threshold(s)*400 + 0.999)),
		})
	}
	t.Rows = append(t.Rows,
		[]string{"SCHISM best matching cluster dim", d0(bestDim(schism.Grid)), "-"},
		[]string{"fixed-threshold CLIQUE best dim", d0(bestDim(clique.Grid)), "-"})
	t.Notes = append(t.Notes,
		"claim: density decreases with dimensionality, so thresholds must too (slide 72)")
	return t, nil
}

// E12Subclu regenerates slide 74: the density-based model keeps arbitrarily
// shaped subspace clusters that grids shatter, at higher runtime.
func E12Subclu() (*Table, error) {
	// A ring living in dims {0,1} of a 4D dataset.
	ring, _ := dataset.RingAndBlob(2, 220, 0)
	n := ring.N()
	pts := make([][]float64, n)
	for i, p := range ring.Points {
		pts[i] = []float64{(p[0] + 1.5) / 3, (p[1] + 1.5) / 3, float64(i%17) / 17, float64(i%23) / 23}
	}
	start := time.Now()
	sub, err := subspace.Subclu(pts, subspace.SubcluConfig{Eps: 0.06, MinPts: 4, MaxDim: 2})
	if err != nil {
		return nil, err
	}
	subTime := time.Since(start)
	start = time.Now()
	cl, err := subspace.Clique(pts, subspace.CliqueConfig{Xi: 10, Tau: 0.02, MaxDim: 2})
	if err != nil {
		return nil, err
	}
	cliqueTime := time.Since(start)
	largest := func(m core.SubspaceClustering) int {
		best := 0
		for _, c := range m {
			if len(c.Dims) == 2 && c.Dims[0] == 0 && c.Dims[1] == 1 && c.Size() > best {
				best = c.Size()
			}
		}
		return best
	}
	t := &Table{
		ID: "E12", Slides: "74",
		Title:   "SUBCLU vs CLIQUE on an arbitrarily shaped subspace cluster (ring of 220)",
		Columns: []string{"method", "largest {0,1} cluster", "clusters total", "runtime"},
		Rows: [][]string{
			{"SUBCLU", d0(largest(sub.Clusters)), d0(len(sub.Clusters)), subTime.Round(time.Millisecond).String()},
			{"CLIQUE", d0(largest(cl.Clusters)), d0(len(cl.Clusters)), cliqueTime.Round(time.Millisecond).String()},
		},
	}
	t.Notes = append(t.Notes,
		"claim: density-based subspace clustering keeps arbitrary shapes whole but costs more runtime (slide 74)")
	return t, nil
}

// E13Redundancy regenerates slides 76-79 (the Müller et al. 2009b study):
// redundancy inflates result sizes and runtimes; non-redundant selection
// fixes both without losing quality.
func E13Redundancy() (*Table, error) {
	t := &Table{
		ID: "E13", Slides: "76-79",
		Title:   "redundancy study: raw subspace clustering vs result optimization",
		Columns: []string{"d", "method", "clusters", "redundancy", "F1", "runtime"},
	}
	for _, d := range []int{6, 8, 10} {
		ds, truth, err := twoConceptData(2, 200, d)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		cl, err := subspace.Clique(ds.Points, subspace.CliqueConfig{Xi: 10, Tau: 0.12})
		if err != nil {
			return nil, err
		}
		cliqueTime := time.Since(start)
		t.Rows = append(t.Rows, []string{
			d0(d), "CLIQUE (ALL)", d0(len(cl.Clusters)),
			f2(metrics.Redundancy(cl.Clusters, 0.5)),
			f2(metrics.SubspaceF1(truth, cl.Clusters)),
			cliqueTime.Round(time.Millisecond).String(),
		})
		for _, sel := range []struct {
			name string
			run  func() (core.SubspaceClustering, error)
		}{
			{"OSCLU", func() (core.SubspaceClustering, error) {
				return subspace.Osclu(cl.Clusters, subspace.OscluConfig{Alpha: 0.5, Beta: 0.5})
			}},
			{"RESCU-lite", func() (core.SubspaceClustering, error) {
				return subspace.Rescu(cl.Clusters, subspace.RescuConfig{MinCoverageGain: 0.3})
			}},
			{"STATPC-lite", func() (core.SubspaceClustering, error) {
				res, err := subspace.StatPC(cl.Grid, subspace.StatPCConfig{N: ds.N()})
				if err != nil {
					return nil, err
				}
				return res.Clusters, nil
			}},
		} {
			start = time.Now()
			m, err := sel.run()
			if err != nil {
				return nil, err
			}
			selTime := time.Since(start)
			t.Rows = append(t.Rows, []string{
				d0(d), sel.name, d0(len(m)),
				f2(metrics.Redundancy(m, 0.5)),
				f2(metrics.SubspaceF1(truth, m)),
				selTime.Round(time.Millisecond).String(),
			})
		}
	}
	t.Notes = append(t.Notes,
		"claim: redundancy is the reason for low quality and high runtimes (slide 76); selection shrinks the result while preserving F1")
	return t, nil
}

// E14Osclu regenerates slides 80-85: beta controls which subspaces count as
// the same concept; alpha controls object novelty inside a concept group.
func E14Osclu() (*Table, error) {
	ds, truth, err := twoConceptData(3, 200, 6)
	if err != nil {
		return nil, err
	}
	cl, err := subspace.Clique(ds.Points, subspace.CliqueConfig{Xi: 10, Tau: 0.12})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E14", Slides: "80-85",
		Title:   "OSCLU parameter sweep over a redundant candidate pool",
		Columns: []string{"alpha", "beta", "selected", "redundancy", "F1"},
	}
	for _, alpha := range []float64{0.3, 0.5, 0.9} {
		for _, beta := range []float64{0.3, 0.5, 0.9} {
			sel, err := subspace.Osclu(cl.Clusters, subspace.OscluConfig{Alpha: alpha, Beta: beta})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				f2(alpha), f2(beta), d0(len(sel)),
				f2(metrics.Redundancy(sel, 0.5)),
				f2(metrics.SubspaceF1(truth, sel)),
			})
		}
	}
	t.Rows = append(t.Rows, []string{"-", "-", d0(len(cl.Clusters)), f2(metrics.Redundancy(cl.Clusters, 0.5)), f2(metrics.SubspaceF1(truth, cl.Clusters))})
	t.Notes = append(t.Notes,
		"last row: the unfiltered candidate pool ALL",
		"claim: orthogonal-concept selection keeps one cluster per concept (slide 80)")
	return t, nil
}

// E15Asclu regenerates slides 86-87: with a Known clustering, only valid
// alternatives survive.
func E15Asclu() (*Table, error) {
	ds, truth, err := twoConceptData(4, 200, 6)
	if err != nil {
		return nil, err
	}
	cl, err := subspace.Clique(ds.Points, subspace.CliqueConfig{Xi: 10, Tau: 0.12})
	if err != nil {
		return nil, err
	}
	known := core.SubspaceClustering{truth[0]}
	sel, err := subspace.Asclu(cl.Clusters, subspace.AscluConfig{
		OscluConfig: subspace.OscluConfig{Alpha: 0.5, Beta: 0.5},
		Known:       known,
	})
	if err != nil {
		return nil, err
	}
	knownRecall := 0.0
	altRecall := 0.0
	for _, c := range sel {
		// Re-description of the Known concept only counts inside its
		// concept group: the same objects in a DIFFERENT subspace are a
		// legitimate alternative (slide 86).
		if subspace.SameConceptGroup(c, truth[0], 0.5) {
			if f := objF1(truth[0], c); f > knownRecall {
				knownRecall = f
			}
		}
		if f := objF1(truth[1], c); f > altRecall {
			altRecall = f
		}
	}
	t := &Table{
		ID: "E15", Slides: "86-87",
		Title:   "ASCLU: alternatives to a Known subspace clustering",
		Columns: []string{"quantity", "value"},
		Rows: [][]string{
			{"candidates", d0(len(cl.Clusters))},
			{"valid alternatives selected", d0(len(sel))},
			{"best F1 vs KNOWN concept in its concept group (want low)", f2(knownRecall)},
			{"best F1 vs hidden alternative (want high)", f2(altRecall)},
		},
	}
	t.Notes = append(t.Notes,
		"claim: clusters re-describing the Known concept are rejected, the hidden concept is returned (slide 86)")
	return t, nil
}

func objF1(a, b core.SubspaceCluster) float64 {
	inter := float64(a.SharedObjects(b))
	if inter == 0 {
		return 0
	}
	prec := inter / float64(b.Size())
	rec := inter / float64(a.Size())
	return 2 * prec * rec / (prec + rec)
}

// E16Enclus regenerates slides 88-89: entropy ranks truly clustered
// subspaces above noise subspaces.
func E16Enclus() (*Table, error) {
	ds, _, err := dataset.SubspaceData(1, 300, 5, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 150, Width: 0.08},
	})
	if err != nil {
		return nil, err
	}
	scores, err := subspace.Enclus(ds.Points, subspace.EnclusConfig{Xi: 4, MaxEntropy: 6, MaxDim: 2})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E16", Slides: "88-89",
		Title:   "ENCLUS subspace ranking by entropy (top 6 of the 2D lattice level)",
		Columns: []string{"subspace", "entropy (bits)", "interest (bits)"},
	}
	count := 0
	for _, s := range scores {
		if len(s.Dims) != 2 {
			continue
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(s.Dims), f3(s.Entropy), f3(s.Interest)})
		count++
		if count == 6 {
			break
		}
	}
	// RIS, the density-based counterpart named on the same slide, must agree
	// on the top subspace.
	ris, err := subspace.RIS(ds.Points, subspace.RISConfig{Eps: 0.05, MinPts: 8, MaxDim: 2, TopK: 1})
	if err != nil {
		return nil, err
	}
	if len(ris) > 0 {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("RIS top: %v", ris[0].Dims), "-", f3(ris[0].Quality)})
	}
	t.Notes = append(t.Notes,
		"claim: low entropy = high coverage/density/correlation; the planted subspace [0 1] ranks first (slide 89)",
		"RIS (density-based subspace search, same slide): its top subspace touches the planted dims — dense stripe projections make EVERY subspace containing a cluster dimension interesting, the redundancy motif of slide 77")
	return t, nil
}
