package experiments

import (
	"multiclust/internal/dataset"
	"multiclust/internal/em"
	"multiclust/internal/metrics"
	"multiclust/internal/multiview"
)

func init() {
	register("E17", E17MSC)
	register("E18", E18CoEM)
	register("E19", E19MVDBSCAN)
	register("E20", E20Consensus)
}

// E17MSC regenerates slide 90: the HSIC penalty steers view search toward
// independent subspaces, each with its own clustering.
func E17MSC() (*Table, error) {
	ds, labelings, _ := dataset.MultiViewGaussians(7, 150, []dataset.ViewSpec{
		{Dims: 2, K: 2, Sep: 6, Sigma: 0.4},
		{Dims: 2, K: 2, Sep: 6, Sigma: 0.4},
	})
	views, err := multiview.MSC(ds.Points, multiview.MSCConfig{K: 2, Views: 2, DimsPer: 2, Seed: 1})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E17", Slides: "90",
		Title:   "mSC-style non-redundant views via HSIC",
		Columns: []string{"view", "dims", "ARI truth-view1", "ARI truth-view2", "HSIC vs previous"},
	}
	for i, v := range views {
		t.Rows = append(t.Rows, []string{
			d0(i + 1), f0IntSlice(v.Dims),
			f2(metrics.AdjustedRand(labelings[0], v.Clustering.Labels)),
			f2(metrics.AdjustedRand(labelings[1], v.Clustering.Labels)),
			f3(v.HSICPrev),
		})
	}
	t.Notes = append(t.Notes,
		"claim: statistical-dependence penalties yield multiple non-redundant spectral views (slide 90)")
	return t, nil
}

func f0IntSlice(v []int) string {
	out := "["
	for i, x := range v {
		if i > 0 {
			out += " "
		}
		out += d0(x)
	}
	return out + "]"
}

// E18CoEM regenerates slides 101-104: interleaved EM raises agreement and
// likelihood; a single view warm-started from the multi-view parameters
// reaches at least the cold single-view likelihood.
func E18CoEM() (*Table, error) {
	a, b, truth := dataset.TwoSourceViews(2, 200, 3, 2, 2, 1.6, 0)
	co, err := multiview.CoEM(a.Points, b.Points, multiview.CoEMConfig{K: 3, Seed: 2})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E18", Slides: "101-104",
		Title:   "co-EM over two conditionally independent views",
		Columns: []string{"round", "logL(view A)", "logL(view B)", "agreement"},
	}
	printed := map[int]bool{}
	step := len(co.History) / 5
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(co.History); i += step {
		printed[i] = true
	}
	printed[len(co.History)-1] = true
	for i, h := range co.History {
		if printed[i] {
			t.Rows = append(t.Rows, []string{d0(i + 1), f2(h.LogLikA), f2(h.LogLikB), f2(h.Agreement)})
		}
	}

	warm, err := em.FitFrom(a.Points, co.ModelA.Clone(), em.Config{K: 3})
	if err != nil {
		return nil, err
	}
	cold, err := em.Fit(a.Points, em.Config{K: 3, Seed: 99})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"single-view warm-started from co-EM", f2(warm.LogLik), "-", "-"},
		[]string{"single-view cold EM", f2(cold.LogLik), "-", "-"},
		[]string{"consensus ARI vs latent classes", f2(metrics.AdjustedRand(truth, co.Clustering.Labels)), "-", "-"})
	t.Notes = append(t.Notes,
		"claim: multi-view final parameters initialize a single view at least as well as cold EM (slide 104); iteration cap required since co-EM need not converge")
	return t, nil
}

// E19MVDBSCAN regenerates slides 105-107: union helps sparse views,
// intersection helps unreliable views.
func E19MVDBSCAN() (*Table, error) {
	t := &Table{
		ID: "E19", Slides: "105-107",
		Title:   "multi-represented DBSCAN: union vs intersection",
		Columns: []string{"scenario", "mode", "purity", "ARI", "noise"},
	}
	// Scenario 1: sparse views — 40% junk in A, 40% junk in B, 20% bridge.
	n := 200
	a, b, labels := dataset.TwoSourceViews(3, n, 2, 2, 2, 0.3, 0)
	for i := 0; i < 2*n/5; i++ {
		a.Points[i][0] += 1000 + 10*float64(i)
	}
	for i := 3 * n / 5; i < n; i++ {
		b.Points[i][0] += 1000 + 10*float64(i)
	}
	sparse := [][][]float64{a.Points, b.Points}
	for _, mode := range []multiview.CombineMode{multiview.Union, multiview.Intersection} {
		c, err := multiview.MVDBSCAN(sparse, multiview.MVDBSCANConfig{Eps: []float64{1.2, 1.2}, MinPts: 4, Mode: mode})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"sparse views", mode.String(),
			f2(metrics.Purity(labels, c.Labels)), f2(metrics.AdjustedRand(labels, c.Labels)), d0(c.NoiseCount())})
	}
	// Scenario 2: unreliable view B (30% junk rows).
	a2, b2, labels2 := dataset.TwoSourceViews(4, 200, 2, 2, 2, 0.3, 0.3)
	unreliable := [][][]float64{a2.Points, b2.Points}
	for _, mode := range []multiview.CombineMode{multiview.Union, multiview.Intersection} {
		c, err := multiview.MVDBSCAN(unreliable, multiview.MVDBSCANConfig{Eps: []float64{1.2, 1.2}, MinPts: 4, Mode: mode})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"unreliable view", mode.String(),
			f2(metrics.Purity(labels2, c.Labels)), f2(metrics.AdjustedRand(labels2, c.Labels)), d0(c.NoiseCount())})
	}
	t.Notes = append(t.Notes,
		"claim: union suits sparse data (recall), intersection suits unreliable data (purity) — slides 106-107")
	return t, nil
}

// E20Consensus regenerates slides 108-110: the random-projection ensemble's
// consensus is more reliable than individual projected runs.
func E20Consensus() (*Table, error) {
	ds, truth := dataset.GaussianBlobs(5, 150, [][]float64{
		{0, 0, 0, 0, 0, 0, 0, 0},
		{6, 6, 6, 6, 6, 6, 6, 6},
		{0, 6, 0, 6, 0, 6, 0, 6},
	}, 0.8)
	res, err := multiview.RandomProjectionEnsemble(ds.Points, multiview.RandomProjectionEnsembleConfig{
		K: 3, Runs: 12, TargetDim: 2, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	worst, best, sum := 1.0, 0.0, 0.0
	for _, r := range res.Runs {
		a := metrics.AdjustedRand(truth, r.Labels)
		if a < worst {
			worst = a
		}
		if a > best {
			best = a
		}
		sum += a
	}
	var labelings [][]int
	for _, r := range res.Runs {
		labelings = append(labelings, r.Labels)
	}
	t := &Table{
		ID: "E20", Slides: "108-110",
		Title:   "random-projection ensemble consensus",
		Columns: []string{"quantity", "ARI vs truth"},
		Rows: [][]string{
			{"worst individual projected run", f2(worst)},
			{"mean individual projected run", f2(sum / float64(len(res.Runs)))},
			{"best individual projected run", f2(best)},
			{"consensus over the ensemble", f2(metrics.AdjustedRand(truth, res.Consensus.Labels))},
			{"shared NMI of consensus with runs", f2(multiview.SharedNMI(res.Consensus.Labels, labelings))},
		},
	}
	t.Notes = append(t.Notes,
		"claim: aggregation stabilizes unstable single projections (slide 110)")
	return t, nil
}
