package experiments

import (
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/linalg"
	"multiclust/internal/metrics"
	"multiclust/internal/orthogonal"
)

func init() {
	register("E06", E06MetricFlip)
	register("E07", E07QiDavidson)
	register("E08", E08CuiOrthogonal)
	register("E09", E09Curse)
}

// E06MetricFlip regenerates slides 50-52: the learned metric makes the
// given clustering easy; inverting its stretch reveals the alternative.
func E06MetricFlip() (*Table, error) {
	ds, hor, ver := dataset.FourBlobToy(1, 25)
	given := core.NewClustering(hor)
	res, err := orthogonal.MetricFlip(ds.Points, given, orthogonal.KMeansBase(2, 1))
	if err != nil {
		return nil, err
	}
	// Re-clustering the ORIGINAL space (naive baseline) vs the flipped
	// space.
	naive, err := orthogonal.KMeansBase(2, 7)(ds.Points)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E06", Slides: "50-52",
		Title:   "metric learning + SVD stretch inversion",
		Columns: []string{"method", "ARI vs given", "ARI vs alternative"},
		Rows: [][]string{
			{"re-cluster original space", f2(metrics.AdjustedRand(hor, naive.Labels)), f2(metrics.AdjustedRand(ver, naive.Labels))},
			{"cluster flipped space", f2(metrics.AdjustedRand(hor, res.Clustering.Labels)), f2(metrics.AdjustedRand(ver, res.Clustering.Labels))},
		},
	}
	svals := topSingularValues(res.Learned, 2)
	t.Rows = append(t.Rows, []string{"learned-metric stretch ratio", fmt.Sprintf("%.1f", svals[0]/svals[1]), "-"})
	t.Notes = append(t.Notes,
		"claim: any algorithm applied after the transformation finds the alternative (slide 48)")
	return t, nil
}

func topSingularValues(m *linalg.Matrix, k int) []float64 {
	s, err := linalg.ComputeSVD(m)
	if err != nil || len(s.S) < k {
		return make([]float64, k)
	}
	return s.S[:k]
}

// E07QiDavidson regenerates slides 54-55: the closed-form transform
// preserves the data distribution while pushing points away from their old
// cluster means.
func E07QiDavidson() (*Table, error) {
	ds, hor, ver := dataset.FourBlobToy(4, 25)
	given := core.NewClustering(hor)
	res, err := orthogonal.AlternativeTransform(ds.Points, given, orthogonal.KMeansBase(2, 3))
	if err != nil {
		return nil, err
	}
	// Relative within-cluster tightness of the OLD clustering before/after.
	tightBefore := metrics.AverageWithinDistance(ds.Points, given, euclid) / meanPairwise(ds.Points)
	tightAfter := metrics.AverageWithinDistance(res.Transformed, given, euclid) / meanPairwise(res.Transformed)
	t := &Table{
		ID: "E07", Slides: "54-55",
		Title:   "closed-form alternative transform M = Sigma~^{-1/2}",
		Columns: []string{"quantity", "value"},
		Rows: [][]string{
			{"old clustering rel. tightness before", f3(tightBefore)},
			{"old clustering rel. tightness after", f3(tightAfter)},
			{"alternative ARI vs hidden view", f2(metrics.AdjustedRand(ver, res.Clustering.Labels))},
			{"alternative ARI vs given", f2(metrics.AdjustedRand(hor, res.Clustering.Labels))},
		},
	}
	t.Notes = append(t.Notes,
		"claim: distance to old means grows after the transform, so novel clusters emerge (slide 54)")
	return t, nil
}

func meanPairwise(pts [][]float64) float64 {
	var s float64
	var c int
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			s += euclid(pts[i], pts[j])
			c++
		}
	}
	if c == 0 {
		return 1
	}
	return s / float64(c)
}

// E08CuiOrthogonal regenerates slides 57-60: iterative orthogonal
// projections peel off one clustering per round, with the number of
// solutions determined automatically by the residual variance.
func E08CuiOrthogonal() (*Table, error) {
	ds, labelings, _ := dataset.MultiViewGaussians(5, 240, []dataset.ViewSpec{
		{Dims: 2, K: 2, Sep: 12, Sigma: 0.5},
		{Dims: 2, K: 2, Sep: 6, Sigma: 0.5},
	})
	iters, err := orthogonal.OrthogonalProjections(ds.Points, orthogonal.KMeansBase(2, 1),
		orthogonal.OrthogonalProjectionsConfig{MaxClusterings: 4})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "E08", Slides: "57-60",
		Title:   "orthogonal projection iterations",
		Columns: []string{"round", "ARI view1", "ARI view2", "residual variance"},
	}
	for r, it := range iters {
		t.Rows = append(t.Rows, []string{
			d0(r + 1),
			f2(metrics.AdjustedRand(labelings[0], it.Clustering.Labels)),
			f2(metrics.AdjustedRand(labelings[1], it.Clustering.Labels)),
			f2(it.ResidualVariance),
		})
	}
	t.Notes = append(t.Notes,
		"claim: round 1 captures the dominant factors, the projection removes them, round 2 reveals the weak view; iteration count is automatic (slide 60)")
	return t, nil
}

// E09Curse regenerates slide 12: the relative distance contrast
// (max-min)/min collapses as dimensionality grows (Beyer et al. 1999).
func E09Curse() (*Table, error) {
	t := &Table{
		ID: "E09", Slides: "12",
		Title:   "curse of dimensionality: distance contrast vs d",
		Columns: []string{"d", "mean contrast over 10 probes"},
	}
	for _, d := range []int{2, 5, 10, 20, 50, 100, 200} {
		ds := dataset.UniformHypercube(3, 300, d)
		var sum float64
		for o := 0; o < 10; o++ {
			sum += dataset.DistanceContrast(ds, o)
		}
		t.Rows = append(t.Rows, []string{d0(d), f3(sum / 10)})
	}
	t.Notes = append(t.Notes,
		"claim: contrast -> 0 as d -> infinity, motivating clustering in projections (slide 12)")
	return t, nil
}
