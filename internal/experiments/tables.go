package experiments

import (
	"sort"
	"strings"
	"time"

	"multiclust/internal/alternative"
	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
	"multiclust/internal/orthogonal"
	"multiclust/internal/simultaneous"
	"multiclust/internal/subspace"
	"multiclust/internal/taxonomy"
)

func init() {
	register("T1", T1Taxonomy)
	register("T2", T2ParadigmSummary)
}

// T1Taxonomy regenerates the tutorial's comparison table (slides 21 and
// 116) from the algorithm metadata registry.
func T1Taxonomy() (*Table, error) {
	t := &Table{
		ID: "T1", Slides: "21,116",
		Title:   "taxonomy of implemented algorithms",
		Columns: []string{"algorithm", "space", "processing", "given know.", "#clusterings", "subspace detec.", "flexibility"},
	}
	for _, e := range taxonomy.Registry() {
		flex := "specialized"
		if e.Exchangeable {
			flex = "exchang. def."
		}
		views := e.Views.String()
		if views == "" {
			views = "-"
		}
		t.Rows = append(t.Rows, []string{
			e.Algorithm, e.Space.String(), e.Processing.String(),
			e.Knowledge.String(), e.Solutions.String(), views, flex,
		})
	}
	t.Notes = append(t.Notes, "generated from internal/taxonomy, mirrors the tutorial's table")
	return t, nil
}

// T2ParadigmSummary runs one representative per paradigm on a single common
// benchmark (two hidden views in a 4-dimensional table) and reports quality
// of the recovered alternative plus wall time — the cross-paradigm
// comparison the tutorial's summary section performs qualitatively.
func T2ParadigmSummary() (*Table, error) {
	ds, labelings, viewDims := dataset.MultiViewGaussians(13, 160, []dataset.ViewSpec{
		{Dims: 2, K: 2, Sep: 10, Sigma: 0.5},
		{Dims: 2, K: 2, Sep: 5, Sigma: 0.5},
	})
	// The "given" knowledge is the dominant view's labeling.
	given := core.NewClustering(labelings[0])
	hidden := labelings[1]

	t := &Table{
		ID: "T2", Slides: "45,61,91,111",
		Title:   "one benchmark, one representative per paradigm: recover the hidden view",
		Columns: []string{"paradigm", "method", "ARI hidden view", "ARI given view", "runtime"},
	}
	type entry struct {
		paradigm, method string
		run              func() ([]int, error)
	}
	runs := []entry{
		{"original space (iterative)", "COALA(w=0.1)", func() ([]int, error) {
			r, err := alternative.Coala(ds.Points, given, alternative.CoalaConfig{K: 2, W: 0.1})
			if err != nil {
				return nil, err
			}
			return r.Clustering.Labels, nil
		}},
		{"original space (simultaneous)", "DecKMeans", func() ([]int, error) {
			r, err := simultaneous.DecKMeans(ds.Points, simultaneous.DecKMeansConfig{Ks: []int{2, 2}, Seed: 1})
			if err != nil {
				return nil, err
			}
			// Report the solution more different from the given view.
			l0, l1 := r.Clusterings[0].Labels, r.Clusterings[1].Labels
			if metrics.NMI(given.Labels, l0) < metrics.NMI(given.Labels, l1) {
				return l0, nil
			}
			return l1, nil
		}},
		{"orthogonal transformation", "Qi&Davidson", func() ([]int, error) {
			r, err := orthogonal.AlternativeTransform(ds.Points, given, orthogonal.KMeansBase(2, 1))
			if err != nil {
				return nil, err
			}
			return r.Clustering.Labels, nil
		}},
		{"subspace projections", "CLIQUE+ASCLU", func() ([]int, error) {
			norm := ds.Normalize()
			cl, err := subspace.Clique(norm.Points, subspace.CliqueConfig{Xi: 6, Tau: 0.15})
			if err != nil {
				return nil, err
			}
			known := core.SubspaceClustering{knownAsSubspace(given, viewDims[0])}
			sel, err := subspace.Asclu(cl.Clusters, subspace.AscluConfig{
				OscluConfig: subspace.OscluConfig{Alpha: 0.5, Beta: 0.5},
				Known:       known,
			})
			if err != nil {
				return nil, err
			}
			// Selected clusters from different subspaces are different
			// solutions; flatten only the concept group (same subspace,
			// disjoint from the Known dims) with the best coverage.
			best := pickAlternativeGroup(sel, viewDims[0])
			return subspaceToLabels(best, ds.N()), nil
		}},
	}
	for _, e := range runs {
		start := time.Now()
		labels, err := e.run()
		if err != nil {
			// A paradigm failing on the common benchmark is itself a result.
			t.Rows = append(t.Rows, []string{e.paradigm, e.method, "error", strings.ReplaceAll(err.Error(), "\n", " "), "-"})
			continue
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			e.paradigm, e.method,
			f2(metrics.AdjustedRand(hidden, labels)),
			f2(metrics.AdjustedRand(given.Labels, labels)),
			elapsed.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"every paradigm should score high on the hidden view and low on the given one",
		"subspace row uses object-overlap labels from the selected subspace clusters; unclustered objects count as noise")
	return t, nil
}

// knownAsSubspace wraps a flat labeling as one subspace cluster per label
// over the given dims; the largest cluster is used as Known.
func knownAsSubspace(c *core.Clustering, dims []int) core.SubspaceCluster {
	best := []int(nil)
	for _, members := range c.Clusters() {
		if len(members) > len(best) {
			best = members
		}
	}
	return core.NewSubspaceCluster(best, dims)
}

// pickAlternativeGroup groups the selection by identical subspace, drops
// groups whose dimensions intersect the known view, and returns the group
// covering the most objects.
func pickAlternativeGroup(sel core.SubspaceClustering, knownDims []int) core.SubspaceClustering {
	knownSet := map[int]bool{}
	for _, d := range knownDims {
		knownSet[d] = true
	}
	var bestGroup core.SubspaceClustering
	bestCover := -1
	groups := sel.GroupBySubspace()
	subspaces := make([]string, 0, len(groups))
	for s := range groups {
		subspaces = append(subspaces, s)
	}
	// Sorted so coverage ties pick the same group every run.
	sort.Strings(subspaces)
	for _, s := range subspaces {
		group := groups[s]
		overlap := false
		for _, d := range group[0].Dims {
			if knownSet[d] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		cover := core.SubspaceClustering(group).TotalObjects()
		if cover > bestCover {
			bestCover = cover
			bestGroup = group
		}
	}
	return bestGroup
}

// subspaceToLabels converts a subspace clustering to flat labels by
// first-come assignment; uncovered objects are noise.
func subspaceToLabels(m core.SubspaceClustering, n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = core.Noise
	}
	for ci, c := range m {
		for _, o := range c.Objects {
			if labels[o] == core.Noise {
				labels[o] = ci
			}
		}
	}
	return labels
}
