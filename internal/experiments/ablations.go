package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/alternative"
	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/kmeans"
	"multiclust/internal/metrics"
	"multiclust/internal/multiview"
	"multiclust/internal/simultaneous"
	"multiclust/internal/subspace"
)

func init() {
	register("A1", A1DecKMeansRestarts)
	register("A2", A2CIBRestarts)
	register("A3", A3EnsembleSize)
	register("A4", A4GridResolution)
	register("A5", A5ExchangeableDefinitions)
	register("A6", A6OrientedVsAxisParallel)
	register("A7", A7UniversesVsMerged)
}

// A1DecKMeansRestarts isolates the design choice DESIGN.md calls out for
// decorrelated k-means: coordinate updates alone can leave both solutions on
// the same structure; restart selection by objective escapes it.
func A1DecKMeansRestarts() (*Table, error) {
	ds, labelings, _ := dataset.MultiViewGaussians(13, 160, []dataset.ViewSpec{
		{Dims: 2, K: 2, Sep: 10, Sigma: 0.5},
		{Dims: 2, K: 2, Sep: 5, Sigma: 0.5},
	})
	t := &Table{
		ID: "A1", Slides: "40-42 (ablation)",
		Title:   "decorrelated k-means: restart-selection ablation",
		Columns: []string{"restarts", "NMI(sol1,sol2)", "views covered", "objective"},
	}
	for _, r := range []int{1, 2, 4, 8} {
		res, err := simultaneous.DecKMeans(ds.Points, simultaneous.DecKMeansConfig{
			Ks: []int{2, 2}, Seed: 1, Restarts: r,
		})
		if err != nil {
			return nil, err
		}
		l0, l1 := res.Clusterings[0].Labels, res.Clusterings[1].Labels
		covered := math.Max(
			math.Min(metrics.AdjustedRand(labelings[0], l0), metrics.AdjustedRand(labelings[1], l1)),
			math.Min(metrics.AdjustedRand(labelings[1], l0), metrics.AdjustedRand(labelings[0], l1)))
		t.Rows = append(t.Rows, []string{
			d0(r), f3(metrics.NMI(l0, l1)), f2(covered), f2(res.Objective),
		})
	}
	t.Notes = append(t.Notes,
		"single-start runs can lock both solutions onto one view (high NMI); objective-selected restarts recover both")
	return t, nil
}

// A2CIBRestarts isolates the CIB initialization sensitivity: the objective
// is non-convex and a single random start lands in poor local minima.
func A2CIBRestarts() (*Table, error) {
	ds, hor, ver := dataset.FourBlobToy(1, 25)
	given := core.NewClustering(hor)
	blobs := dataset.CombineLabels(hor, ver)
	t := &Table{
		ID: "A2", Slides: "35-36 (ablation)",
		Title:   "conditional information bottleneck: restart ablation",
		Columns: []string{"restarts", "mean refine-ARI over 8 seeds", "min", "max"},
	}
	for _, r := range []int{1, 3, 5} {
		var sum, min, max float64
		min, max = 2, -1
		const seeds = 8
		for seed := int64(0); seed < seeds; seed++ {
			res, err := alternative.CIB(ds.Points, given, alternative.CIBConfig{
				K: 2, Beta: 10, Bins: 4, Seed: seed, Restarts: r,
			})
			if err != nil {
				return nil, err
			}
			product := dataset.CombineLabels(hor, res.Clustering.Labels)
			a := metrics.AdjustedRand(blobs, product)
			sum += a
			if a < min {
				min = a
			}
			if a > max {
				max = a
			}
		}
		t.Rows = append(t.Rows, []string{d0(r), f2(sum / seeds), f2(min), f2(max)})
	}
	t.Notes = append(t.Notes,
		"refine-ARI: how well (given x alternative) recovers the four blobs; 1.0 = a perfect orthogonal alternative",
		"objective-selected restarts lift the worst-case seed substantially")
	return t, nil
}

// A3EnsembleSize sweeps the random-projection ensemble size: one projected
// run is unstable, the consensus stabilizes as runs accumulate (the knob
// behind E20).
func A3EnsembleSize() (*Table, error) {
	ds, truth := dataset.GaussianBlobs(5, 150, [][]float64{
		{0, 0, 0, 0, 0, 0, 0, 0},
		{6, 6, 6, 6, 6, 6, 6, 6},
		{0, 6, 0, 6, 0, 6, 0, 6},
	}, 0.8)
	t := &Table{
		ID: "A3", Slides: "108-110 (ablation)",
		Title:   "random-projection consensus vs ensemble size",
		Columns: []string{"runs", "consensus ARI", "mean individual ARI"},
	}
	for _, runs := range []int{1, 3, 6, 12, 24} {
		res, err := multiview.RandomProjectionEnsemble(ds.Points, multiview.RandomProjectionEnsembleConfig{
			K: 3, Runs: runs, TargetDim: 2, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, r := range res.Runs {
			sum += metrics.AdjustedRand(truth, r.Labels)
		}
		t.Rows = append(t.Rows, []string{
			d0(runs),
			f2(metrics.AdjustedRand(truth, res.Consensus.Labels)),
			f2(sum / float64(len(res.Runs))),
		})
	}
	t.Notes = append(t.Notes,
		"consensus quality rises toward 1.0 with ensemble size while individual runs stay noisy")
	return t, nil
}

// A5ExchangeableDefinitions demonstrates the taxonomy's "flexibility" axis
// (slide 22): the same alternative-clustering search with three exchangeable
// dissimilarity definitions — pair-counting (1-Rand), information-theoretic
// (VI) and density-profile (ADCO) — each yielding a valid alternative.
func A5ExchangeableDefinitions() (*Table, error) {
	ds, hor, ver := dataset.FourBlobToy(1, 20)
	given := core.NewClustering(hor)
	t := &Table{
		ID: "A5", Slides: "22,27 (ablation)",
		Title:   "one search procedure, exchangeable Diss definitions",
		Columns: []string{"Diss", "ARI vs given", "ARI vs vertical", "quality (silhouette)"},
	}
	for _, row := range []struct {
		name string
		diss core.DissimilarityFunc
	}{
		{"1-Rand", metrics.RandDissimilarity()},
		{"VI", metrics.VIDissimilarity()},
		{"1-NMI", metrics.NMIDissimilarity()},
		{"ADCO", metrics.ADCODissimilarity(ds.Points, 5)},
	} {
		res, err := alternative.Flexible(ds.Points, []*core.Clustering{given},
			metrics.SilhouetteQuality(), row.diss,
			alternative.FlexibleConfig{K: 2, Lambda: 1, Seed: 4})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			row.name,
			f2(metrics.AdjustedRand(hor, res.Clustering.Labels)),
			f2(metrics.AdjustedRand(ver, res.Clustering.Labels)),
			f2(res.Quality),
		})
	}
	t.Notes = append(t.Notes,
		"every Diss definition steers the search away from the given clustering; label-based ones land on the vertical view, ADCO accepts any profile-different alternative")
	return t, nil
}

// A6OrientedVsAxisParallel contrasts ORCLUS with PROCLUS on clusters spread
// along rotated directions (the generalization Aggarwal & Yu motivate,
// slide 66): axis-parallel dimension selection cannot describe an oblique
// cluster, oriented eigen-subspaces can.
func A6OrientedVsAxisParallel() (*Table, error) {
	// Two oblique clusters in 4D.
	pts, truth := obliqueClusters(1, 60)
	t := &Table{
		ID: "A6", Slides: "66 (ablation)",
		Title:   "oriented (ORCLUS) vs axis-parallel (PROCLUS) projected clustering",
		Columns: []string{"method", "ARI"},
	}
	orc, err := subspace.Orclus(pts, subspace.OrclusConfig{K: 2, L: 3, Seed: 1})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"ORCLUS", f2(metrics.AdjustedRand(truth, orc.Assignment.Labels))})
	pro, err := subspace.Proclus(pts, subspace.ProclusConfig{K: 2, L: 2, Seed: 1})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"PROCLUS", f2(metrics.AdjustedRand(truth, pro.Assignment.Labels))})
	t.Notes = append(t.Notes,
		"clusters are stretched along rotated directions; axis-parallel dimension selection degrades while oriented subspaces keep full accuracy")
	return t, nil
}

// obliqueClusters builds two PARALLEL oblique stripes: both spread along
// (1,1)/sqrt2 in dims {0,1} with centers offset along (1,-1), so every axis
// projection of the two clusters overlaps completely — the configuration
// axis-parallel dimension selection cannot express.
func obliqueClusters(seed int64, nPer int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	dir := []float64{invSqrt2, invSqrt2, 0, 0}
	centers := [][]float64{{0, 0, 0, 0}, {3, -3, 0, 0}}
	var pts [][]float64
	var labels []int
	for c := 0; c < 2; c++ {
		for i := 0; i < nPer; i++ {
			tt := rng.NormFloat64() * 4
			row := make([]float64, 4)
			for j := 0; j < 4; j++ {
				row[j] = centers[c][j] + tt*dir[j] + rng.NormFloat64()*0.15
			}
			pts = append(pts, row)
			labels = append(labels, c)
		}
	}
	return pts, labels
}

const invSqrt2 = 0.7071067811865476

// A7UniversesVsMerged regenerates the "lost views" motivation (slides
// 10-11): merging multiple sources into one universal table destroys the
// per-source structure, while learning in parallel universes keeps it.
// Objects belong to one of two universes; their coordinates in the other
// universe are junk.
func A7UniversesVsMerged() (*Table, error) {
	views, universeOf, classOf := universeBenchmark(1, 60)
	t := &Table{
		ID: "A7", Slides: "10-11 (ablation)",
		Title:   "parallel universes vs one merged universal view",
		Columns: []string{"method", "class purity (own-universe objects)", "universe recovery"},
	}
	// Merged: concatenate the views and run k-means.
	n := len(views[0])
	merged := make([][]float64, n)
	for i := 0; i < n; i++ {
		merged[i] = append(append([]float64(nil), views[0][i]...), views[1][i]...)
	}
	km, err := kmeans.Run(merged, kmeans.Config{K: 2, Seed: 1, Restarts: 5})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"k-means on merged table",
		f2(ownUniversePurity(classOf, universeOf, [][]int{km.Clustering.Labels, km.Clustering.Labels})), "-"})

	pu, err := multiview.ParallelUniverses(views, multiview.UniversesConfig{K: 2, Seed: 1})
	if err != nil {
		return nil, err
	}
	agree := 0
	for i, v := range pu.UniverseOf {
		if v == universeOf[i] {
			agree++
		}
	}
	labels := [][]int{pu.Clusterings[0].Labels, pu.Clusterings[1].Labels}
	t.Rows = append(t.Rows, []string{"parallel universes",
		f2(ownUniversePurity(classOf, universeOf, labels)),
		f2(float64(agree) / float64(n))})
	t.Notes = append(t.Notes,
		"own-universe purity: purity of each object's class within the clustering of ITS universe",
		"merging sources obscures per-source structure; universe memberships recover it (slides 10-11)")
	return t, nil
}

// universeBenchmark mirrors the multiview package's test generator.
func universeBenchmark(seed int64, nPer int) (views [][][]float64, universeOf, classOf []int) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 * nPer
	viewA := make([][]float64, n)
	viewB := make([][]float64, n)
	universeOf = make([]int, n)
	classOf = make([]int, n)
	for i := 0; i < n; i++ {
		cls := rng.Intn(2)
		classOf[i] = cls
		center := float64(cls * 6)
		if i < nPer {
			universeOf[i] = 0
			viewA[i] = []float64{center + rng.NormFloat64()*0.3, center + rng.NormFloat64()*0.3}
			viewB[i] = []float64{rng.Float64() * 20, rng.Float64() * 20}
		} else {
			universeOf[i] = 1
			viewA[i] = []float64{rng.Float64() * 20, rng.Float64() * 20}
			viewB[i] = []float64{center + rng.NormFloat64()*0.3, center + rng.NormFloat64()*0.3}
		}
	}
	return [][][]float64{viewA, viewB}, universeOf, classOf
}

// ownUniversePurity computes the purity of classOf against each object's
// label in the clustering of its own universe.
func ownUniversePurity(classOf, universeOf []int, labels [][]int) float64 {
	var truth, found []int
	for i := range classOf {
		truth = append(truth, classOf[i])
		// Offset labels per universe so cluster ids from different
		// universes never collide.
		found = append(found, universeOf[i]*1000+labels[universeOf[i]][i])
	}
	return metrics.Purity(truth, found)
}

// A4GridResolution sweeps CLIQUE's xi and tau: the resolution/threshold
// interplay that decides between missing clusters and flooding the result
// with redundant units.
func A4GridResolution() (*Table, error) {
	ds, truth, err := twoConceptData(2, 200, 6)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "A4", Slides: "69-72 (ablation)",
		Title:   "CLIQUE grid resolution and threshold sweep",
		Columns: []string{"xi", "tau", "dense units", "clusters", "F1"},
	}
	for _, xi := range []int{5, 10, 20} {
		for _, tau := range []float64{0.05, 0.12, 0.25} {
			res, err := subspace.Clique(ds.Points, subspace.CliqueConfig{Xi: xi, Tau: tau})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				d0(xi), fmt.Sprintf("%g", tau),
				d0(res.Stats.DenseUnits), d0(len(res.Clusters)),
				f2(metrics.SubspaceF1(truth, res.Clusters)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"tau below the uniform level (1/xi) floods the result with full-range 1D clusters; tau too high starves the planted clusters",
		"fine grids (large xi) split clusters across cell boundaries and need lower tau")
	return t, nil
}
