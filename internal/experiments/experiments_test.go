package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	ids := IDs()
	if len(ids) < 30 {
		t.Fatalf("registry has %d experiments, want all 30", len(ids))
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tbl.ID != id {
				t.Errorf("table id %q != %q", tbl.ID, id)
			}
			if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
				t.Errorf("%s: empty table", id)
			}
			if tbl.Slides == "" || tbl.Title == "" {
				t.Errorf("%s: missing metadata", id)
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatalf("%s: render: %v", id, err)
			}
			if !strings.Contains(buf.String(), tbl.Title) {
				t.Errorf("%s: render missing title", id)
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunAllWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "== "); got != len(IDs()) {
		t.Errorf("RunAll wrote %d tables, want %d", got, len(IDs()))
	}
}

// TestHeadlineClaims pins the *shape* of the key results: who wins and in
// which direction, as recorded in EXPERIMENTS.md.
func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-sized")
	}
	// E09: contrast decreases monotonically with d.
	tbl, err := Run("E09")
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Errorf("E09 contrast not decreasing: %v", tbl.Rows)
		}
		prev = v
	}

	// E11: SCHISM reaches dimensionality 5, fixed-threshold CLIQUE does not.
	tbl, err = Run("E11")
	if err != nil {
		t.Fatal(err)
	}
	var schismDim, cliqueDim int
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "SCHISM best") {
			schismDim, _ = strconv.Atoi(row[1])
		}
		if strings.HasPrefix(row[0], "fixed-threshold") {
			cliqueDim, _ = strconv.Atoi(row[1])
		}
	}
	if schismDim < 5 || cliqueDim >= 5 {
		t.Errorf("E11 shape wrong: schism=%d clique=%d", schismDim, cliqueDim)
	}

	// E19: intersection purity must beat union purity on the unreliable
	// scenario.
	tbl, err = Run("E19")
	if err != nil {
		t.Fatal(err)
	}
	var unionP, interP float64
	for _, row := range tbl.Rows {
		if row[0] == "unreliable view" {
			v, _ := strconv.ParseFloat(row[2], 64)
			if row[1] == "union" {
				unionP = v
			} else {
				interP = v
			}
		}
	}
	if interP <= unionP {
		t.Errorf("E19 shape wrong: intersection purity %v <= union %v", interP, unionP)
	}

	// T2: every paradigm recovers the hidden view with ARI >= 0.9 and stays
	// below 0.3 on the given view.
	tbl, err = Run("T2")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		hid, err1 := strconv.ParseFloat(row[2], 64)
		giv, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("T2 row not numeric: %v", row)
		}
		if hid < 0.9 || giv > 0.3 {
			t.Errorf("T2 paradigm %s failed the benchmark: hidden=%v given=%v", row[1], hid, giv)
		}
	}
}
