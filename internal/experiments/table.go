// Package experiments regenerates every figure and table of the tutorial
// "Discovering Multiple Clustering Solutions" as printable tables with
// deterministic synthetic workloads. Each experiment function is
// self-contained and cheap enough to double as a benchmark body; the
// per-experiment index lives in DESIGN.md and the measured outcomes in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one regenerated figure or table.
type Table struct {
	ID      string // experiment id, e.g. "E01"
	Title   string // what the figure/table shows
	Slides  string // tutorial slides the claim comes from
	Columns []string
	Rows    [][]string
	Notes   []string // the tutorial's qualitative claim and whether it held
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s (slides %s): %s\n", t.ID, t.Slides, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "   note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner produces one experiment table.
type Runner func() (*Table, error)

// registry maps experiment ids to runners; populated by init functions in
// the per-paradigm files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return r()
}

// RunAll executes every experiment in id order, writing each table to w.
func RunAll(w io.Writer) error {
	for _, id := range IDs() {
		t, err := Run(id)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d0(v int) string     { return fmt.Sprintf("%d", v) }
