package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func tokenPosition(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

// Fixtures live under testdata/<rule>/ and mark every expected finding with
// a trailing comment: // want `regex`. The harness fails on a want with no
// finding (missed true positive) AND on a finding with no want (false
// positive on the fixture's clean code), so each fixture demonstrates both
// directions of the rule.

var fixtureLoader *Loader

func loaderForTest(t *testing.T) *Loader {
	t.Helper()
	if fixtureLoader != nil {
		return fixtureLoader
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	fixtureLoader = l
	return l
}

var wantRe = regexp.MustCompile("want\\s+`([^`]+)`")

// parseWants maps "file:line" to the expected-message regexes declared there.
func parseWants(t *testing.T, p *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regex %q: %v", m[1], err)
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants
}

func checkFixture(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loaderForTest(t).Load(abs)
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, pkg)
	findings := Run(pkg, []*Analyzer{a})

	matched := map[string]int{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		res := wants[key]
		ok := false
		for _, re := range res {
			if re.MatchString(f.Message) {
				ok = true
				matched[key]++
			}
		}
		if !ok {
			t.Errorf("unexpected finding (false positive on fixture): %s", f)
		}
	}
	for key, res := range wants {
		if matched[key] < len(res) {
			t.Errorf("%s: want %d finding(s) matching %v, matched %d",
				key, len(res), patterns(res), matched[key])
		}
	}
}

func patterns(res []*regexp.Regexp) []string {
	out := make([]string, len(res))
	for i, re := range res {
		out[i] = re.String()
	}
	return out
}

func TestMapOrderFixture(t *testing.T)   { checkFixture(t, "maporder", MapOrder()) }
func TestGlobalRandFixture(t *testing.T) { checkFixture(t, "globalrand", GlobalRand()) }
func TestSharedRNGFixture(t *testing.T)  { checkFixture(t, "sharedrng", SharedRNG()) }
func TestNakedGoFixture(t *testing.T)    { checkFixture(t, "nakedgo", NakedGo()) }
func TestFloatKeyFixture(t *testing.T)   { checkFixture(t, "floatkey", FloatKey()) }
func TestCtxPollFixture(t *testing.T)    { checkFixture(t, "ctxpoll", CtxPoll()) }
func TestObsNilFixture(t *testing.T)     { checkFixture(t, "obsnil", ObsNil()) }
func TestSpanEndFixture(t *testing.T)    { checkFixture(t, "spanend", SpanEnd()) }
func TestCtxFlowFixture(t *testing.T)    { checkFixture(t, "ctxflow", CtxFlow()) }
func TestRngEscapeFixture(t *testing.T)  { checkFixture(t, "rngescape", RngEscape()) }
func TestLockCopyFixture(t *testing.T)   { checkFixture(t, "lockcopy", LockCopy()) }
func TestGoLeakFixture(t *testing.T)     { checkFixture(t, "goleak", GoLeak()) }
func TestDetSourceFixture(t *testing.T)  { checkFixture(t, "detsource", DetSource()) }

// internal/obs is the one package allowed to call Recorder methods
// directly: its helpers and sinks ARE the guard. The real package must
// load clean under the rule's exemption.
func TestObsNilExemptsObsPackage(t *testing.T) {
	pkg, err := loaderForTest(t).Load("internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if findings := Run(pkg, []*Analyzer{ObsNil()}); len(findings) != 0 {
		t.Errorf("obsnil flagged the exempt internal/obs package: %v", findings)
	}
}

// Reintroducing the PR 1 metrics.Silhouette map-order bug — float silhouette
// terms summed while ranging over the label→members map — must fail the
// linter. The fixture mirrors the original buggy loop shape.
func TestSilhouetteMapOrderRegressionFails(t *testing.T) {
	checkFixture(t, "silhouette", MapOrder())

	abs, err := filepath.Abs("testdata/silhouette")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loaderForTest(t).Load(abs)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkg, []*Analyzer{MapOrder()})
	if len(findings) == 0 {
		t.Fatal("linter passed the reintroduced Silhouette map-order bug")
	}
	for _, f := range findings {
		if strings.Contains(f.Message, `float accumulation into "sum"`) {
			return
		}
	}
	t.Fatalf("no finding names the order-sensitive sum; got %v", findings)
}

// go statements inside internal/parallel are the one sanctioned fan-out
// point; nakedgo must stay silent there.
func TestNakedGoExemptsParallelPackage(t *testing.T) {
	abs, err := filepath.Abs("../parallel")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loaderForTest(t).Load(abs)
	if err != nil {
		t.Fatal(err)
	}
	if findings := Run(pkg, []*Analyzer{NakedGo()}); len(findings) != 0 {
		t.Fatalf("nakedgo flagged internal/parallel itself: %v", findings)
	}
}

// The ignore directive must only suppress the named rule.
func TestIgnoreDirectiveIsRuleScoped(t *testing.T) {
	set := ignoreSet{"f.go": {10: {"maporder"}}}
	mk := func(rule string, line int) Finding {
		return Finding{Rule: rule, Pos: tokenPosition("f.go", line)}
	}
	if !set.suppresses(mk("maporder", 10)) || !set.suppresses(mk("maporder", 11)) {
		t.Error("directive should suppress its rule on the same and next line")
	}
	if set.suppresses(mk("floatkey", 10)) {
		t.Error("directive must not suppress other rules")
	}
	if set.suppresses(mk("maporder", 12)) {
		t.Error("directive must not reach two lines down")
	}
}

func TestPackageDirsSkipsTestdata(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	var sawLint, sawParallel bool
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("PackageDirs returned testdata dir %s", d)
		}
		sawLint = sawLint || strings.HasSuffix(d, "internal/lint")
		sawParallel = sawParallel || strings.HasSuffix(d, "internal/parallel")
	}
	if !sawLint || !sawParallel {
		t.Errorf("PackageDirs missed expected packages (lint=%v parallel=%v)", sawLint, sawParallel)
	}
}
