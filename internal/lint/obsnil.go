package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsNil flags direct method calls on values whose static type is the
// obs.Recorder interface anywhere but internal/obs itself. The
// observability layer's zero-cost-when-disabled guarantee rests on one
// convention: instrumented code goes through the nil-guarded package
// helpers (obs.Count, obs.Gauge, obs.Observe, obs.Histogram, obs.Span),
// which compile to
// a single pointer test when no recorder is installed. A direct
// rec.Count(...) call panics on a nil interface and, worse, normalizes a
// second calling convention that silently skips the guard. Calls on
// concrete sink types (*obs.Collector, *obs.TraceWriter) are fine — those
// values are provably non-nil at the call site.
func ObsNil() *Analyzer {
	return &Analyzer{
		Name: "obsnil",
		Doc:  "direct obs.Recorder method calls outside internal/obs",
		Run:  runObsNil,
	}
}

// obsPkgPath is the package allowed to touch Recorder values directly:
// the helpers and sinks it defines are the guard.
const obsPkgPath = "internal/obs"

func runObsNil(p *Package) []Finding {
	if p.Path == obsPkgPath || strings.HasSuffix(p.Path, "/"+obsPkgPath) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := p.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			if !isObsRecorder(selection.Recv()) {
				return true
			}
			out = append(out, p.finding("obsnil", call.Pos(),
				"direct %s call on an obs.Recorder; use the nil-guarded obs.%s helper so a disabled recorder stays zero-cost",
				sel.Sel.Name, helperFor(sel.Sel.Name)))
			return true
		})
	}
	return out
}

// isObsRecorder reports whether t is the named interface
// multiclust/internal/obs.Recorder (aliases resolve to the same named type).
func isObsRecorder(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "Recorder" {
		return false
	}
	path := obj.Pkg().Path()
	return path == obsPkgPath || strings.HasSuffix(path, "/"+obsPkgPath)
}

// helperFor names the package helper that wraps the given Recorder method.
func helperFor(method string) string {
	switch method {
	case "Count", "Gauge", "Observe", "Histogram":
		return method
	case "StartSpan":
		return "Span"
	default:
		return "Count/Gauge/Observe/Histogram/Span"
	}
}
