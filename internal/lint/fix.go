package lint

import (
	"errors"
	"fmt"
	"os/exec"
	"sort"
	"strings"
)

// ErrDirtyWorktree is returned by CheckCleanWorktree when the git worktree
// has uncommitted changes. multiclust-lint -fix refuses to rewrite files on
// top of unsaved work unless -force is given, so a bad fix is always one
// `git checkout` away from undone.
var ErrDirtyWorktree = errors.New("git worktree has uncommitted changes")

// CheckCleanWorktree reports ErrDirtyWorktree (wrapped, with the offending
// paths) when `git status --porcelain` in dir lists anything. A directory
// that is not a git repository — or a machine without git — passes: there is
// no committed state to protect there.
func CheckCleanWorktree(dir string) error {
	out, err := exec.Command("git", "-C", dir, "status", "--porcelain").Output()
	if err != nil {
		return nil // no git, or not a repository: nothing to guard
	}
	status := strings.TrimSpace(string(out))
	if status == "" {
		return nil
	}
	lines := strings.Split(status, "\n")
	more := ""
	if len(lines) > 5 {
		more = fmt.Sprintf("\n  … and %d more", len(lines)-5)
		lines = lines[:5]
	}
	return fmt.Errorf("%w:\n  %s%s", ErrDirtyWorktree, strings.Join(lines, "\n  "), more)
}

// TextEdit is one textual replacement: substitute NewText for the byte range
// [Offset, End) of Filename. An insertion has Offset == End.
type TextEdit struct {
	Filename string `json:"file"`
	Offset   int    `json:"offset"`
	End      int    `json:"end"`
	NewText  string `json:"newText"`
}

// SuggestedFix is a mechanical rewrite that resolves a finding. Fixes are
// attached only when the rewrite is provably safe — the analyzers gate on
// signature compatibility (ctxflow) or on the loop shape and key type
// (maporder) before offering one.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// ApplyFixes computes the rewritten contents of every file touched by the
// findings' suggested fixes. read supplies the current bytes of a file (pass
// os.ReadFile for the real tree; tests substitute fakes). Identical edits
// contributed by multiple findings — e.g. two loops both adding the sort
// import — collapse to one; genuinely overlapping conflicting edits are an
// error, never silently merged.
func ApplyFixes(findings []Finding, read func(string) ([]byte, error)) (map[string][]byte, error) {
	perFile := map[string][]TextEdit{}
	for _, f := range findings {
		for _, fix := range f.Fixes {
			for _, e := range fix.Edits {
				perFile[e.Filename] = append(perFile[e.Filename], e)
			}
		}
	}
	out := map[string][]byte{}
	for file, edits := range perFile {
		src, err := read(file)
		if err != nil {
			return nil, err
		}
		fixed, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		out[file] = fixed
	}
	return out, nil
}

func applyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Offset != edits[j].Offset {
			return edits[i].Offset < edits[j].Offset
		}
		return edits[i].End < edits[j].End
	})
	// Drop exact duplicates, then verify the rest are disjoint and in range.
	dedup := edits[:0]
	for i, e := range edits {
		if i > 0 && e == edits[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	edits = dedup
	for i, e := range edits {
		if e.Offset < 0 || e.End < e.Offset || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of range (file has %d bytes)", e.Offset, e.End, len(src))
		}
		if i > 0 && e.Offset < edits[i-1].End {
			return nil, fmt.Errorf("conflicting edits: [%d,%d) overlaps [%d,%d)",
				edits[i-1].Offset, edits[i-1].End, e.Offset, e.End)
		}
	}
	// Splice back to front so earlier offsets stay valid.
	fixed := append([]byte(nil), src...)
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		fixed = append(fixed[:e.Offset], append([]byte(e.NewText), fixed[e.End:]...)...)
	}
	return fixed, nil
}
