// Package lint is multiclust's determinism and parallel-safety static
// analysis suite. It is built on the standard library only (go/parser,
// go/ast, go/types) so the repository keeps its no-external-deps contract.
//
// Every rule here encodes an invariant the library's byte-identical-replay
// guarantee rests on (see DESIGN.md, "Determinism invariants"):
//
//   - maporder:   no order-sensitive operation inside for-range over a map
//   - globalrand: no global math/rand state, no time-seeded RNGs
//   - sharedrng:  no *rand.Rand shared across parallel worker closures
//   - nakedgo:    no go statements outside internal/parallel
//   - floatkey:   no float map keys, no exact float ==/!= comparisons
//   - ctxpoll:    no looping function that takes a context.Context yet
//     never consults it (cancellation it can't observe)
//   - obsnil:     no direct obs.Recorder method calls outside internal/obs
//     (the nil-guarded helpers are what keep disabled instrumentation free)
//   - spanend:    no span-open (obs.Span/obs.SpanCtx/StartSpan) whose end
//     function is neither deferred nor called on every return path
//   - ctxflow:    no call that drops an in-scope ctx when the callee has a
//     ...Context-capable sibling (interprocedural over the module)
//   - rngescape:  no *rand.Rand crossing a parallel.For/Each/Map boundary
//     through a struct field, channel, or worker return value
//   - lockcopy:   no by-value copy of a type containing a sync primitive
//     (Mutex, RWMutex, WaitGroup, Once, Cond — incl. obs.Collector)
//   - goleak:     no goroutine spawn whose Wait/channel-receive join is
//     skippable by an early return on some CFG path
//   - detsource:  no time.Now/global-entropy value flowing (via dataflow)
//     into a clustering Result
//
// The flow-sensitive rules (goleak, spanend) are built on the package's CFG
// builder (cfg.go); the taint rules (detsource) on the use-def/reaching-
// definitions engine (flowpass.go). Both are exported — see FlowPass — so
// future rules can share them.
//
// A finding can be suppressed with a directive comment on the offending
// line or the line directly above it:
//
//	//lint:ignore <rule>[,<rule>] <reason>
//
// The reason is mandatory in spirit (reviewers read it) but not enforced.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position. Fixes, when present,
// are mechanical rewrites that resolve it (applied by multiclust-lint -fix).
type Finding struct {
	Pos     token.Position `json:"pos"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
	Fixes   []SuggestedFix `json:"fixes,omitempty"`
}

// String renders the finding in the canonical file:line: [rule] message form
// emitted by cmd/multiclust-lint.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. multiclust/internal/metrics
	Dir   string // directory the files were parsed from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is a single named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// All returns the full analyzer suite in report order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		GlobalRand(),
		SharedRNG(),
		NakedGo(),
		FloatKey(),
		CtxPoll(),
		ObsNil(),
		SpanEnd(),
		CtxFlow(),
		RngEscape(),
		LockCopy(),
		GoLeak(),
		DetSource(),
	}
}

// Run applies the given analyzers to the package, drops findings suppressed
// by //lint:ignore directives, and returns the rest sorted by position.
func Run(p *Package, analyzers []*Analyzer) []Finding {
	ignores := collectIgnores(p)
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(p) {
			if ignores.suppresses(f) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// ignoreSet maps file -> line -> rules suppressed at that line.
type ignoreSet map[string]map[int][]string

// IgnorePrefix is the directive that suppresses a finding:
// //lint:ignore <rule>[,<rule>] <reason>
const IgnorePrefix = "lint:ignore"

func collectIgnores(p *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := set[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					set[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], strings.Split(fields[0], ",")...)
			}
		}
	}
	return set
}

// suppresses reports whether a directive on the finding's line, or the line
// directly above it, names the finding's rule (or "all").
func (s ignoreSet) suppresses(f Finding) bool {
	m := s[f.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, rule := range m[line] {
			if rule == f.Rule || rule == "all" {
				return true
			}
		}
	}
	return false
}

// ---- shared AST/type helpers used by the analyzers ----

// inspectStack walks root like ast.Inspect but hands fn the stack of open
// ancestor nodes (outermost first, not including n itself).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// rootIdent unwraps parens, selectors, index and star expressions (and
// single-argument calls/conversions, e.g. sort.Sort(byKey(keys))) down to the
// base identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			if len(x.Args) != 1 {
				return nil
			}
			e = x.Args[0]
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its object via Uses then Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredOutside reports whether id's object is declared outside node's
// source range — i.e. the identifier refers to state that outlives one
// iteration of a loop rooted at node. Package-level and imported objects
// count as outside.
func declaredOutside(info *types.Info, id *ast.Ident, node ast.Node) bool {
	obj := objectOf(info, id)
	if obj == nil {
		return false
	}
	if obj.Pos() == token.NoPos {
		return true
	}
	return obj.Pos() < node.Pos() || obj.Pos() >= node.End()
}

// isFloat reports whether t's underlying type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pkgName resolves an identifier used as a package qualifier and returns the
// imported package path, or "".
func pkgName(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// selectorCall matches call expressions of the form pkg.Fn(...) — including
// generic instantiations pkg.Fn[T](...) — where pkg resolves to an import of
// pkgPath. It returns the selected function name.
func selectorCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	fun := call.Fun
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = x.X
	case *ast.IndexListExpr:
		fun = x.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pkgName(info, base) != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// mentionsObject reports whether any identifier under n resolves to obj.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	if n == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func (p *Package) position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

func (p *Package) finding(rule string, pos token.Pos, format string, args ...any) Finding {
	return Finding{Pos: p.position(pos), Rule: rule, Message: fmt.Sprintf(format, args...)}
}

// edit builds a TextEdit replacing the source range [pos, end) with newText.
func (p *Package) edit(pos, end token.Pos, newText string) TextEdit {
	a := p.position(pos)
	b := p.position(end)
	return TextEdit{Filename: a.Filename, Offset: a.Offset, End: b.Offset, NewText: newText}
}
