package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncBody parses src as the body of func f() and returns its CFG dump.
func cfgDump(t *testing.T, src string) string {
	t.Helper()
	fset := token.NewFileSet()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	f, err := parser.ParseFile(fset, "cfg.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fn.Body).Dump(fset)
}

// Golden block/edge dumps for every statement shape the builder lowers.
// These are exact-output tests: an edge added or dropped by a refactor of
// the builder shows up as a diff here before it silently changes what the
// dataflow analyzers can see.
func TestCFGGoldenShapes(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			name: "straightline",
			src:  "x := 1\ny := x + 1\n_ = y",
			want: `b0 entry [x := 1; y := x + 1; _ = y] -> b1
b1 exit
`,
		},
		{
			name: "if_else",
			src:  "x := 1\nif x > 0 {\nx++\n} else {\nx--\n}\n_ = x",
			want: `b0 entry [x := 1; x > 0] -> b1 b2
b1 if.then [x++] -> b3
b2 if.else [x--] -> b3
b3 if.after [_ = x] -> b4
b4 exit
`,
		},
		{
			name: "if_early_return",
			src:  "x := 1\nif x > 0 {\nreturn\n}\n_ = x",
			want: `b0 entry [x := 1; x > 0] -> b1 b2
b1 if.then [return] -> b3
b2 if.after [_ = x] -> b3
b3 exit
`,
		},
		{
			name: "for_three_clause",
			src:  "s := 0\nfor i := 0; i < 10; i++ {\ns += i\n}\n_ = s",
			want: `b0 entry [s := 0; i := 0] -> b1
b1 for.head [i < 10] -> b2 b4
b2 for.body [s += i] -> b3
b3 for.post [i++] -> b1
b4 for.after [_ = s] -> b5
b5 exit
`,
		},
		{
			name: "for_break_continue",
			src:  "for i := 0; i < 10; i++ {\nif i == 3 {\ncontinue\n}\nif i == 7 {\nbreak\n}\n}",
			want: `b0 entry [i := 0] -> b1
b1 for.head [i < 10] -> b2 b8
b2 for.body [i == 3] -> b3 b4
b3 if.then [continue] -> b7
b4 if.after [i == 7] -> b5 b6
b5 if.then [break] -> b8
b6 if.after -> b7
b7 for.post [i++] -> b1
b8 for.after -> b9
b9 exit
`,
		},
		{
			name: "range_map",
			src:  "m := map[int]int{}\nfor k, v := range m {\n_ = k\n_ = v\n}",
			want: `b0 entry [m := map[int]int{}] -> b1
b1 range.head [for k, v := range m { }] -> b2 b3
b2 range.body [_ = k; _ = v] -> b1
b3 range.after -> b4
b4 exit
`,
		},
		{
			name: "switch_fallthrough_default",
			src:  "x := 1\nswitch x {\ncase 1:\nx = 10\nfallthrough\ncase 2:\nx = 20\ndefault:\nx = 0\n}\n_ = x",
			want: `b0 entry [x := 1; x] -> b1 b2 b3
b1 switch.case [1; x = 10; fallthrough] -> b2
b2 switch.case [2; x = 20] -> b4
b3 switch.default [x = 0] -> b4
b4 switch.after [_ = x] -> b5
b5 exit
`,
		},
		{
			name: "switch_no_default",
			src:  "x := 1\nswitch {\ncase x > 0:\nx = 1\n}",
			want: `b0 entry [x := 1] -> b1 b2
b1 switch.case [x > 0; x = 1] -> b2
b2 switch.after -> b3
b3 exit
`,
		},
		{
			name: "select_two_cases",
			src:  "var a, b chan int\nselect {\ncase <-a:\n_ = a\ncase v := <-b:\n_ = v\n}",
			want: `b0 entry [var a, b chan int; select] -> b1 b2
b1 select.case [<-a; _ = a] -> b3
b2 select.case [v := <-b; _ = v] -> b3
b3 select.after -> b4
b4 exit
`,
		},
		{
			name: "defer_collected",
			src:  "defer println(1)\nx := 2\n_ = x",
			want: `b0 entry [defer println(1); x := 2; _ = x] -> b1
b1 exit
`,
		},
		{
			name: "labeled_break",
			src:  "outer:\nfor i := 0; i < 3; i++ {\nfor j := 0; j < 3; j++ {\nif i+j > 3 {\nbreak outer\n}\n}\n}",
			want: `b0 entry -> b1
b1 label.outer [i := 0] -> b2
b2 for.head [i < 3] -> b3 b11
b3 for.body [j := 0] -> b4
b4 for.head [j < 3] -> b5 b9
b5 for.body [i+j > 3] -> b6 b7
b6 if.then [break outer] -> b11
b7 if.after -> b8
b8 for.post [j++] -> b4
b9 for.after -> b10
b10 for.post [i++] -> b2
b11 for.after -> b12
b12 exit
`,
		},
		{
			name: "panic_terminates",
			src:  "x := 1\nif x > 0 {\npanic(\"boom\")\n}\n_ = x",
			want: `b0 entry [x := 1; x > 0] -> b1 b2
b1 if.then [panic(\"boom\")] -> b3
b2 if.after [_ = x] -> b3
b3 exit
`,
		},
		{
			name: "goto_forward",
			src:  "x := 1\nif x > 0 {\ngoto done\n}\nx = 2\ndone:\n_ = x",
			want: `b0 entry [x := 1; x > 0] -> b1 b2
b1 if.then [goto done] -> b3
b2 if.after [x = 2] -> b3
b3 label.done [_ = x] -> b4
b4 exit
`,
		},
		{
			name: "infinite_for_no_break",
			src:  "for {\n_ = 1\n}",
			want: `b0 entry -> b1
b1 for.head -> b2
b2 for.body [_ = 1] -> b1
b3 for.after
b4 exit
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := cfgDump(t, tc.src)
			want := strings.ReplaceAll(tc.want, `\"`, `"`)
			if got != want {
				t.Errorf("CFG dump mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// Every statement of the source must land in exactly one reachable-or-not
// block, and BlockOf must find it.
func TestCFGBlockOfFindsBodyStatements(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s += i
		}
	}
	return s
}`
	f, err := parser.ParseFile(fset, "b.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	cfg := BuildCFG(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.ReturnStmt, *ast.IfStmt:
			if blk := cfg.BlockOf(n); blk == nil {
				t.Errorf("BlockOf(%T at %v) = nil", n, fset.Position(n.Pos()))
			}
		}
		return true
	})
}

// EveryPathHits: a join present on the straight path but skippable via an
// early return must report false; a join dominating the exit reports true.
func TestCFGEveryPathHits(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
func f(cond bool, join func()) {
	spawn()
	if cond {
		return
	}
	join()
}
func spawn() {}`
	f, err := parser.ParseFile(fset, "e.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	cfg := BuildCFG(fn.Body)

	isCall := func(blk *Block, name string) bool {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
		return false
	}
	var spawnBlk *Block
	for _, blk := range cfg.Blocks {
		if isCall(blk, "spawn") {
			spawnBlk = blk
		}
	}
	if spawnBlk == nil {
		t.Fatal("spawn block not found")
	}
	if cfg.EveryPathHits(spawnBlk, func(b *Block) bool { return isCall(b, "join") }) {
		t.Error("early-return path skips join() but EveryPathHits said true")
	}
	if !cfg.EveryPathHits(spawnBlk, func(b *Block) bool { return isCall(b, "join") || isReturnBlock(b) }) {
		t.Error("join-or-return covers every path but EveryPathHits said false")
	}
}

func isReturnBlock(b *Block) bool {
	for _, n := range b.Nodes {
		if _, ok := n.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}
