package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheckSrc parses and type-checks one synthetic file, returning a
// Package the engine can run on.
func typecheckSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("flowtest", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Path: "flowtest", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
}

func funcDecl(t *testing.T, p *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
				return fn
			}
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// A redefinition on one branch must merge with the original at the join:
// both definitions reach; after an unconditional redefinition only the new
// one does.
func TestReachingDefinitionsBranchMerge(t *testing.T) {
	p := typecheckSrc(t, `package p
func f(cond bool) int {
	x := 1
	if cond {
		x = 2
	}
	y := x // both defs of x reach here
	x = 3
	return x + y // only x = 3 reaches
}`)
	fn := funcDecl(t, p, "f")
	fp := NewFlowPass(p, fn)

	var xObj types.Object
	for _, o := range fp.Vars() {
		if o.Name() == "x" {
			xObj = o
		}
	}
	if xObj == nil {
		t.Fatal("x not tracked")
	}

	stmtAtLine := func(line int) ast.Node {
		var found ast.Node
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if n == nil || found != nil {
				return false
			}
			if _, ok := n.(ast.Stmt); ok && p.Fset.Position(n.Pos()).Line == line {
				found = n
				return false
			}
			return true
		})
		if found == nil {
			t.Fatalf("no statement at line %d", line)
		}
		return found
	}

	atJoin := fp.DefsReaching(xObj, stmtAtLine(7)) // y := x
	if len(atJoin) != 2 {
		t.Fatalf("want 2 defs of x at join, got %d: %v", len(atJoin), describeDefs(p, atJoin))
	}
	atReturn := fp.DefsReaching(xObj, stmtAtLine(9)) // return
	if len(atReturn) != 1 {
		t.Fatalf("want 1 def of x at return (x = 3 kills), got %d: %v", len(atReturn), describeDefs(p, atReturn))
	}
	if line := p.Fset.Position(atReturn[0].Node.Pos()).Line; line != 8 {
		t.Errorf("surviving def should be line 8 (x = 3), got line %d", line)
	}
}

// A loop's back-edge must carry definitions from the body to the head.
func TestReachingDefinitionsLoopBackEdge(t *testing.T) {
	p := typecheckSrc(t, `package p
func f(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = i
	}
	return x
}`)
	fn := funcDecl(t, p, "f")
	fp := NewFlowPass(p, fn)

	var xObj types.Object
	for _, o := range fp.Vars() {
		if o.Name() == "x" {
			xObj = o
		}
	}
	var ret ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	defs := fp.DefsReaching(xObj, ret)
	if len(defs) != 2 {
		t.Fatalf("want both x := 0 and loop-body x = i to reach return, got %v", describeDefs(p, defs))
	}
}

// Parameters are defined at entry; their defs reach uses until shadowed by
// reassignment.
func TestReachingDefinitionsParamEntry(t *testing.T) {
	p := typecheckSrc(t, `package p
func f(a int) int {
	b := a
	a = 5
	return a + b
}`)
	fn := funcDecl(t, p, "f")
	fp := NewFlowPass(p, fn)
	var aObj types.Object
	for _, o := range fp.Vars() {
		if o.Name() == "a" {
			aObj = o
		}
	}
	var ret ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	defs := fp.DefsReaching(aObj, ret)
	if len(defs) != 1 || defs[0].Node == nil {
		t.Fatalf("a = 5 should be the only def at return, got %v", describeDefs(p, defs))
	}
}

// Taint must follow a value laundered through intermediate locals, and must
// not leak onto untainted variables.
func TestTaintFixpointThroughLocals(t *testing.T) {
	p := typecheckSrc(t, `package p
import "time"
func f() (int64, int64) {
	t0 := time.Now()
	n := t0.UnixNano()
	m := n + 1
	clean := int64(42)
	return m, clean
}`)
	fn := funcDecl(t, p, "f")
	fp := NewFlowPass(p, fn)
	isTimeNow := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		name, ok := selectorCall(p.Info, call, "time")
		return ok && name == "Now"
	}
	taint := fp.TaintedBy(isTimeNow)
	want := map[string]bool{"t0": true, "n": true, "m": true, "clean": false}
	for _, o := range fp.Vars() {
		if exp, tracked := want[o.Name()]; tracked && taint.Objs[o] != exp {
			t.Errorf("taint of %s = %v, want %v", o.Name(), taint.Objs[o], exp)
		}
	}
	if len(taint.First) == 0 {
		t.Error("taint.First should record originating sites")
	}
}

func describeDefs(p *Package, defs []Def) []string {
	out := make([]string, len(defs))
	for i, d := range defs {
		if d.Node == nil {
			out[i] = fmt.Sprintf("%s@entry", d.Obj.Name())
		} else {
			out[i] = fmt.Sprintf("%s@line%d", d.Obj.Name(), p.Fset.Position(d.Node.Pos()).Line)
		}
	}
	return out
}

// The engine must at least not choke on every function shape in the real
// repository packages it will analyze (smoke coverage for odd shapes:
// closures, methods, generics in parallel, select in ops).
func TestFlowPassSmokesOverRealPackages(t *testing.T) {
	for _, dir := range []string{"internal/parallel", "internal/ops", "internal/kmeans"} {
		pkg, err := loaderForTest(t).Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		count := 0
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
					fp := NewFlowPass(pkg, fn)
					if fp.CFG.Entry == nil || fp.CFG.Exit == nil {
						t.Errorf("%s: nil entry/exit in %s", dir, fn.Name.Name)
					}
					count++
				}
			}
		}
		if count == 0 {
			t.Errorf("%s: no functions analyzed", dir)
		}
	}
}

// Dump determinism: two builds of the same function render identically (the
// golden tests depend on it).
func TestCFGDumpDeterministic(t *testing.T) {
	src := `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		switch {
		case i%2 == 0:
			s += i
		default:
			s -= i
		}
	}
	return s
}`
	p := typecheckSrc(t, src)
	fn := funcDecl(t, p, "f")
	a := BuildCFG(fn.Body).Dump(p.Fset)
	b := BuildCFG(fn.Body).Dump(p.Fset)
	if a != b || !strings.Contains(a, "switch.case") {
		t.Errorf("nondeterministic or malformed dump:\n%s\nvs\n%s", a, b)
	}
}
