package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of one module without any tooling
// beyond the standard library. Imports inside the module are resolved against
// the module directory; everything else (the standard library) goes through
// go/importer's source importer, so no compiled export data is required.
//
// Only non-test files are loaded: the determinism invariants the analyzers
// enforce bind library code, while tests legitimately compare floats exactly
// (that is what a replay-determinism test does).
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std   types.Importer
	cache map[string]*types.Package
}

// NewLoader builds a Loader for the module rooted at dir (the directory
// holding go.mod).
func NewLoader(dir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  dir,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*types.Package{},
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Load parses and type-checks the non-test files of the package in dir and
// returns it ready for analysis. dir may be absolute or relative to the
// module root. Packages under testdata get a synthetic import path so they
// never collide with real module packages.
func (l *Loader) Load(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModuleDir, dir)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	path := l.importPathFor(dir)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	if _, ok := l.cache[path]; !ok {
		l.cache[path] = pkg
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: pkg, Info: info}, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "lintfixture/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	rel = filepath.ToSlash(rel)
	if strings.Contains(rel, "testdata/") || strings.HasPrefix(rel, "testdata") {
		return "lintfixture/" + rel
	}
	return l.ModulePath + "/" + rel
}

// Import implements types.Importer: module-local paths are loaded from
// source under the module root, everything else is delegated to the standard
// library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleDir, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/"))
		files, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.Fset, files, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test .go files of dir in name order (so positions
// and findings are stable across runs).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// PackageDirs walks root and returns every directory containing at least one
// non-test .go file, skipping hidden directories, testdata and vendor trees.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
