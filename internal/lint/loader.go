package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Loader parses and type-checks packages of one module without any tooling
// beyond the standard library. Imports inside the module are resolved against
// the module directory — through vendor/ first when one exists — and
// everything else (the standard library) goes through go/importer's source
// importer, so no compiled export data is required.
//
// Files excluded by a //go:build constraint or a _GOOS/_GOARCH filename
// suffix for the current platform are skipped before parsing, exactly as the
// go tool would skip them; loading them anyway would type-check code that
// never builds here (and typically fails on missing platform symbols).
//
// By default only non-test files are loaded: the determinism invariants the
// analyzers enforce bind library code, while tests legitimately compare
// floats exactly (that is what a replay-determinism test does). Setting
// IncludeTests adds each package's in-package _test.go files; external
// (package foo_test) files are still excluded because they cannot be
// type-checked into the same package.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	// IncludeTests loads in-package _test.go files alongside library code.
	IncludeTests bool

	std   types.Importer
	cache map[string]*types.Package
}

// NewLoader builds a Loader for the module rooted at dir (the directory
// holding go.mod).
func NewLoader(dir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  dir,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*types.Package{},
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Load parses and type-checks the non-test files of the package in dir and
// returns it ready for analysis. dir may be absolute or relative to the
// module root. Packages under testdata get a synthetic import path so they
// never collide with real module packages.
func (l *Loader) Load(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModuleDir, dir)
	}
	files, err := l.parseDir(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files build here", dir)
	}
	path := l.importPathFor(dir)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	if _, ok := l.cache[path]; !ok {
		l.cache[path] = pkg
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: pkg, Info: info}, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "lintfixture/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	rel = filepath.ToSlash(rel)
	if strings.Contains(rel, "testdata/") || strings.HasPrefix(rel, "testdata") {
		return "lintfixture/" + rel
	}
	return l.ModulePath + "/" + rel
}

// Import implements types.Importer: module-local paths are loaded from
// source under the module root, third-party paths with a vendor/ copy are
// loaded from that copy, and everything else is delegated to the standard
// library's source importer. Imported packages never include test files —
// the go tool does not compile a dependency's tests into an import either.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleDir, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/"))
		return l.checkDir(path, dir)
	}
	if dir := filepath.Join(l.ModuleDir, "vendor", filepath.FromSlash(path)); hasGoFiles(dir) {
		return l.checkDir(path, dir)
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// checkDir parses and type-checks dir as the package at import path and
// caches the result.
func (l *Loader) checkDir(path, dir string) (*types.Package, error) {
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// hasGoFiles reports whether dir exists and holds at least one non-test
// .go file — the precondition for treating it as a vendored package.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// parseDir parses the .go files of dir in name order (so positions and
// findings are stable across runs). Files are excluded the way the go tool
// excludes them: _test.go files unless includeTests is set, files whose
// _GOOS/_GOARCH filename suffix does not match the current platform, and
// files whose //go:build (or legacy // +build) constraint evaluates false
// here. When tests are included, external test-package files (package
// foo_test) are still dropped — they cannot type-check into the package.
func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") && !includeTests {
			continue
		}
		if !filenameMatchesPlatform(n) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	type parsed struct {
		name string
		file *ast.File
	}
	files := make([]parsed, 0, len(names))
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !constraintsSatisfied(f) {
			continue
		}
		if pkgName == "" && !strings.HasSuffix(n, "_test.go") {
			pkgName = f.Name.Name
		}
		files = append(files, parsed{n, f})
	}
	out := make([]*ast.File, 0, len(files))
	for _, pf := range files {
		if pkgName != "" && pf.file.Name.Name != pkgName {
			continue // external test package (foo_test) riding along in dir
		}
		out = append(out, pf.file)
	}
	return out, nil
}

// constraintsSatisfied evaluates the build constraints in the comments above
// f's package clause for the current platform. Several legacy // +build
// lines AND together, matching the go tool.
func constraintsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(buildTagSatisfied) {
				return false
			}
		}
	}
	return true
}

// buildTagSatisfied decides a single build tag for the platform the linter
// runs on: the current GOOS/GOARCH, "unix" for unix-like GOOS values, and
// go1.N release tags up to the running toolchain. cgo and custom tags are
// treated as unset — the linter never builds with cgo and has no -tags flag.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		want, err := strconv.Atoi(rest)
		if err != nil {
			return false
		}
		cur, ok := strings.CutPrefix(runtime.Version(), "go1.")
		if !ok {
			return true // devel toolchain: assume newest
		}
		if i := strings.IndexByte(cur, '.'); i >= 0 {
			cur = cur[:i]
		}
		have, err := strconv.Atoi(cur)
		return err == nil && have >= want
	}
	return false
}

var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// filenameMatchesPlatform applies the go tool's implicit filename
// constraints: name_GOOS.go, name_GOARCH.go, and name_GOOS_GOARCH.go only
// build on the named platform. A file whose whole base name is an OS or
// arch (linux.go) carries no constraint, matching go/build.
func filenameMatchesPlatform(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	base = strings.TrimSuffix(base, "_test")
	parts := strings.Split(base, "_")
	n := len(parts)
	if n < 2 {
		return true
	}
	if knownGOARCH[parts[n-1]] {
		if parts[n-1] != runtime.GOARCH {
			return false
		}
		if n >= 3 && knownGOOS[parts[n-2]] {
			return parts[n-2] == runtime.GOOS
		}
		return true
	}
	if knownGOOS[parts[n-1]] {
		return parts[n-1] == runtime.GOOS
	}
	return true
}

// PackageDirs walks root and returns every directory containing at least one
// non-test .go file, skipping hidden directories, testdata and vendor trees.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
