package lint

import (
	"go/ast"
	"go/types"
)

// CtxPoll flags functions that can observe a context — a context.Context
// parameter, or a context stored in a field of the method's receiver — and
// contain at least one loop, yet never consult the context. Such a function
// advertises cancellation in its signature (or carries it in its receiver)
// but can never observe it — the exact bug the ...Context variants exist to
// prevent. The finding is reported at the first loop, where the ctx.Err()
// poll belongs. A context parameter named _ is an explicit opt-out and is
// not flagged.
//
// Two false negatives of the original per-ident check are covered:
//
//   - renaming the context (c := ctx) and then ignoring c: creating an
//     alias is not consulting the context, but it used to count as a
//     mention;
//   - looping methods on a type that carries its context in a struct field
//     (p.ctx) and never reads it.
func CtxPoll() *Analyzer {
	return &Analyzer{
		Name: "ctxpoll",
		Doc:  "context.Context (parameter or receiver field) never consulted in a looping function",
		Run:  runCtxPoll,
	}
}

func runCtxPoll(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxObjs, kind := contextSources(p, fn)
			if len(ctxObjs) == 0 {
				continue
			}
			tracked, aliasSites := contextAliases(p, fn.Body, ctxObjs)
			var firstLoop ast.Node
			used := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					if firstLoop == nil {
						firstLoop = v
					}
				case *ast.Ident:
					if tracked[p.Info.Uses[v]] && !aliasSites[v] {
						used = true
					}
				}
				return !used
			})
			if firstLoop != nil && !used {
				out = append(out, p.finding("ctxpoll", firstLoop.Pos(),
					"function %s %s but never consults it; poll ctx.Err() at this loop's iteration boundary%s",
					fn.Name.Name, kind.describe, kind.optOut))
			}
		}
	}
	return out
}

// ctxKind carries the finding wording for the two context sources.
type ctxKind struct {
	describe string
	optOut   string
}

// contextSources collects the objects through which fn can observe a
// context: its named context.Context parameters, plus — for methods — any
// context.Context fields of the receiver type.
func contextSources(p *Package, fn *ast.FuncDecl) ([]types.Object, ctxKind) {
	var objs []types.Object
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if !isContextType(p, field.Type) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				if obj := p.Info.Defs[name]; obj != nil {
					objs = append(objs, obj)
				}
			}
		}
	}
	if len(objs) > 0 {
		return objs, ctxKind{describe: "takes a context.Context", optOut: " or rename the parameter to _"}
	}
	// Method receivers: a context stored in a struct field is just as
	// observable as a parameter.
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		t := p.Info.TypeOf(fn.Recv.List[0].Type)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if isContextValue(st.Field(i).Type()) {
					objs = append(objs, st.Field(i))
				}
			}
		}
	}
	return objs, ctxKind{describe: "carries a context.Context in its receiver", optOut: ""}
}

// contextAliases tracks locals bound directly from a context source —
// c := ctx, c := p.ctx, including chains — and returns the full tracked
// object set plus the identifiers that only create aliases. An alias-
// creating mention is not a consultation: `c := ctx` observes nothing.
func contextAliases(p *Package, body *ast.BlockStmt, ctxObjs []types.Object) (map[types.Object]bool, map[*ast.Ident]bool) {
	tracked := map[types.Object]bool{}
	for _, o := range ctxObjs {
		tracked[o] = true
	}
	aliasSites := map[*ast.Ident]bool{}
	// Fixpoint: an alias of an alias is still just a rename.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				rhsIdents := bareContextRef(p, rhs, tracked)
				if rhsIdents == nil {
					continue
				}
				lhs, ok := assign.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if lhs.Name != "_" {
					obj := objectOf(p.Info, lhs)
					if obj == nil {
						continue
					}
					if !tracked[obj] {
						tracked[obj] = true
						changed = true
					}
				}
				for _, id := range rhsIdents {
					if !aliasSites[id] {
						aliasSites[id] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return tracked, aliasSites
}

// bareContextRef reports whether e is a bare reference to a tracked context
// — an identifier, or a selector whose field object is tracked — returning
// the identifiers that make up the reference (nil when it is not one).
func bareContextRef(p *Package, e ast.Expr, tracked map[types.Object]bool) []*ast.Ident {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[x]; obj != nil && tracked[obj] {
			return []*ast.Ident{x}
		}
	case *ast.SelectorExpr:
		if obj := p.Info.Uses[x.Sel]; obj != nil && tracked[obj] {
			ids := []*ast.Ident{x.Sel}
			if base, ok := x.X.(*ast.Ident); ok {
				ids = append(ids, base)
			}
			return ids
		}
	}
	return nil
}
