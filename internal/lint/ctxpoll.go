package lint

import (
	"go/ast"
	"go/types"
)

// CtxPoll flags functions that accept a context.Context, contain at least
// one loop, and never mention the context in their body. Such a function
// advertises cancellation in its signature but can never observe it — the
// exact bug the ...Context variants exist to prevent. The finding is
// reported at the first loop, where the ctx.Err() poll belongs. A context
// parameter named _ is an explicit opt-out and is not flagged.
func CtxPoll() *Analyzer {
	return &Analyzer{
		Name: "ctxpoll",
		Doc:  "context.Context parameter never consulted in a looping function",
		Run:  runCtxPoll,
	}
}

func runCtxPoll(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Type.Params == nil {
				continue
			}
			// Named, non-underscore parameters of type context.Context.
			var ctxObjs []types.Object
			for _, field := range fn.Type.Params.List {
				if !isContextType(p, field.Type) {
					continue
				}
				for _, name := range field.Names {
					if name.Name == "_" {
						continue
					}
					if obj := p.Info.Defs[name]; obj != nil {
						ctxObjs = append(ctxObjs, obj)
					}
				}
			}
			if len(ctxObjs) == 0 {
				continue
			}
			var firstLoop ast.Node
			used := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					if firstLoop == nil {
						firstLoop = v
					}
				case *ast.Ident:
					use := p.Info.Uses[v]
					for _, obj := range ctxObjs {
						if use == obj {
							used = true
						}
					}
				}
				return !used
			})
			if firstLoop != nil && !used {
				out = append(out, p.finding("ctxpoll", firstLoop.Pos(),
					"function %s takes a context.Context but never consults it; poll ctx.Err() at this loop's iteration boundary or rename the parameter to _",
					fn.Name.Name))
			}
		}
	}
	return out
}

// isContextType reports whether the parameter type is context.Context.
func isContextType(p *Package, expr ast.Expr) bool {
	t := p.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
