package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// writeModule lays out a scratch module in t.TempDir from a map of
// relative path -> contents and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// otherGOOS returns a real GOOS that is not the one the test runs on, so a
// constraint naming it is guaranteed false here.
func otherGOOS() string {
	if runtime.GOOS == "windows" {
		return "linux"
	}
	return "windows"
}

func TestLoaderSkipsBuildConstrainedFiles(t *testing.T) {
	foreign := otherGOOS()
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.21\n",
		"kept.go": "package scratch\n\nfunc Kept() int { return 1 }\n",
		// Both excluded files reference undefined names: if the loader fed
		// either to the type checker, Load would fail loudly.
		"tagged.go": "//go:build " + foreign + "\n\npackage scratch\n\nfunc Tagged() missingType { return platformOnly() }\n",
		"plusbuild.go": "// +build " + foreign + "\n\npackage scratch\n\nfunc Legacy() missingType { return platformOnly() }\n",
		"suffix_" + foreign + ".go": "package scratch\n\nfunc Suffixed() missingType { return platformOnly() }\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want 1 (constrained files must be skipped)", len(pkg.Files))
	}
	scope := pkg.Types.Scope()
	if scope.Lookup("Kept") == nil {
		t.Error("Kept missing from package scope")
	}
	for _, name := range []string{"Tagged", "Legacy", "Suffixed"} {
		if scope.Lookup(name) != nil {
			t.Errorf("%s leaked into the package scope from an excluded file", name)
		}
	}
}

func TestLoaderCurrentPlatformFilesLoad(t *testing.T) {
	// The mirror-image check: constraints naming THIS platform keep the
	// file, so the loader is filtering, not just dropping everything tagged.
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.21\n",
		"tagged.go": "//go:build " + runtime.GOOS + "\n\npackage scratch\n\nfunc Native() int { return 1 }\n",
		"suffix_" + runtime.GOOS + "_" + runtime.GOARCH + ".go": "package scratch\n\nfunc NativeSuffix() int { return 2 }\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("got %d files, want 2 (current-platform constraints must pass)", len(pkg.Files))
	}
}

func TestLoaderIncludeTestsToggle(t *testing.T) {
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.21\n",
		"lib.go": "package scratch\n\nfunc Lib() int { return 1 }\n",
		// In-package test file: included only under IncludeTests.
		"lib_test.go": "package scratch\n\nfunc testHelper() int { return Lib() + 1 }\n",
		// External test package: never type-checkable into scratch, always dropped.
		"ext_test.go": "package scratch_test\n\nfunc externalHelper() int { return 0 }\n",
	}

	dir := writeModule(t, files)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load(dir)
	if err != nil {
		t.Fatalf("Load without tests: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("default load got %d files, want 1", len(pkg.Files))
	}
	if pkg.Types.Scope().Lookup("testHelper") != nil {
		t.Error("testHelper loaded without IncludeTests")
	}

	l2, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	l2.IncludeTests = true
	pkg2, err := l2.Load(dir)
	if err != nil {
		t.Fatalf("Load with tests: %v", err)
	}
	if len(pkg2.Files) != 2 {
		t.Fatalf("IncludeTests load got %d files, want 2 (lib.go + lib_test.go)", len(pkg2.Files))
	}
	scope := pkg2.Types.Scope()
	if scope.Lookup("testHelper") == nil {
		t.Error("testHelper missing with IncludeTests")
	}
	if scope.Lookup("externalHelper") != nil {
		t.Error("external test package file leaked into the package")
	}
}

func TestLoaderResolvesVendoredImport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.21\n",
		"vendor/example.com/dep/dep.go": "package dep\n\n// Answer is the vendored export.\nconst Answer = 42\n",
		"use.go": "package scratch\n\nimport \"example.com/dep\"\n\nfunc Use() int { return dep.Answer }\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load(dir)
	if err != nil {
		t.Fatalf("Load with vendored import: %v", err)
	}
	imports := pkg.Types.Imports()
	found := false
	for _, imp := range imports {
		if imp.Path() == "example.com/dep" {
			found = true
		}
	}
	if !found {
		t.Fatalf("example.com/dep not among imports %v", imports)
	}
	// The vendored package's declarations must have really type-checked.
	dep, err := l.Import("example.com/dep")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Scope().Lookup("Answer") == nil {
		t.Error("Answer missing from vendored package scope")
	}
}

func TestBuildTagSatisfied(t *testing.T) {
	cases := []struct {
		tag  string
		want bool
	}{
		{runtime.GOOS, true},
		{runtime.GOARCH, true},
		{otherGOOS(), false},
		{"go1.1", true},     // ancient release: always satisfied
		{"go1.9999", false}, // future release: never satisfied
		{"sometag", false},  // custom tags are unset
		{"cgo", false},
	}
	for _, c := range cases {
		if got := buildTagSatisfied(c.tag); got != c.want {
			t.Errorf("buildTagSatisfied(%q) = %v, want %v", c.tag, got, c.want)
		}
	}
}

func TestFilenameMatchesPlatform(t *testing.T) {
	foreign := otherGOOS()
	cases := []struct {
		name string
		want bool
	}{
		{"plain.go", true},
		{"x_" + runtime.GOOS + ".go", true},
		{"x_" + foreign + ".go", false},
		{"x_" + runtime.GOOS + "_" + runtime.GOARCH + ".go", true},
		{"x_" + foreign + "_" + runtime.GOARCH + ".go", false},
		{"x_" + foreign + "_test.go", false},
		{foreign + ".go", true}, // bare OS name carries no constraint
		{"many_words_here.go", true},
	}
	for _, c := range cases {
		if got := filenameMatchesPlatform(c.name); got != c.want {
			t.Errorf("filenameMatchesPlatform(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
