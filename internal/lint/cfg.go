package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// This file is the control-flow half of the dataflow engine (see flowpass.go
// for the use-def half). BuildCFG lowers one function body into basic blocks
// connected by the edges Go's statements induce: if/else joins, loop
// back-edges, switch/select fan-out with fallthrough, labeled break/continue,
// goto, and the return/panic edges into a single synthetic exit block.
// Deferred statements are collected separately: they run at every exit, so
// path-sensitive rules (goleak, spanend-style analyses) treat them as
// present on each exit edge rather than at their lexical position.

// Block is one basic block: a maximal run of statements with a single entry
// and a single exit decision. Nodes holds the statements (and, for branch
// heads, the controlling expressions) in execution order.
type Block struct {
	Index int
	Kind  string // entry, exit, body, if.then, if.else, for.head, ...
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of a single function body. Entry has no
// predecessors; Exit collects every return, panic, and natural fall-off.
// Blocks left unreachable by returns/gotos are still materialized (with no
// predecessors) so every statement of the source is represented.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Defers []*ast.DeferStmt
}

// BuildCFG builds the control-flow graph of body. body may be the Body of an
// *ast.FuncDecl or *ast.FuncLit; a nil body (declaration without definition)
// yields a two-block entry→exit graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:       &CFG{},
		labels:    map[string]*labelInfo{},
		gotoFixes: map[string][]*Block{},
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = &Block{Kind: "exit"}
	b.current = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.current, b.cfg.Exit) // natural fall-off
	// Resolve forward gotos now that every label has been seen.
	for name, srcs := range b.gotoFixes {
		li := b.labels[name]
		for _, src := range srcs {
			if li != nil && li.target != nil {
				b.edge(src, li.target)
			} else {
				b.edge(src, b.cfg.Exit) // undeclared label: malformed input
			}
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

type labelInfo struct {
	target         *Block // block the labeled statement starts in (goto / labeled loop head)
	breakTarget    *Block // after-block for `break label`
	continueTarget *Block // post/head block for `continue label`
}

type cfgBuilder struct {
	cfg     *CFG
	current *Block // nil when the next statement is unreachable

	// Innermost-first stacks of break/continue targets for unlabeled branches.
	breaks    []*Block
	continues []*Block

	labels    map[string]*labelInfo
	gotoFixes map[string][]*Block // label name -> blocks ending in a pending goto

	// pendingLabel is set while lowering the statement a label is attached
	// to, so its loop registers labeled break/continue targets.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock makes blk current, linking it from the previous current block
// (fallthrough edge) when one exists.
func (b *cfgBuilder) startBlock(blk *Block) {
	b.edge(b.current, blk)
	b.current = blk
}

// ensureCurrent guarantees a current block to append to; statements after a
// return/goto land in a fresh unreachable block so they stay represented.
func (b *cfgBuilder) ensureCurrent() *Block {
	if b.current == nil {
		b.current = b.newBlock("unreachable")
	}
	return b.current
}

func (b *cfgBuilder) add(n ast.Node) {
	cur := b.ensureCurrent()
	cur.Nodes = append(cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Assign, s.Body, "typeswitch")

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.current, b.cfg.Exit)
		b.current = nil

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.current, b.cfg.Exit)
			b.current = nil
		}

	default:
		// Assignments, declarations, go/send/incdec/empty statements: straight-line.
		if s != nil {
			if _, ok := s.(*ast.EmptyStmt); !ok {
				b.add(s)
			}
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.ensureCurrent()
	after := &Block{Kind: "if.after"} // registered later so dump order reads naturally

	then := b.newBlock("if.then")
	b.edge(head, then)
	b.current = then
	b.stmtList(s.Body.List)
	thenEnd := b.current

	var elseEnd *Block
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(head, els)
		b.current = els
		b.stmt(s.Else)
		elseEnd = b.current
	} else {
		b.edge(head, after)
	}

	b.register(after)
	b.edge(thenEnd, after)
	b.edge(elseEnd, after)
	b.current = after
	if len(after.Preds) == 0 {
		b.current = nil // both arms returned and no else-fallthrough
	}
}

// register assigns an index to a block created out of line.
func (b *cfgBuilder) register(blk *Block) {
	blk.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	after := &Block{Kind: "for.after"}
	post := head
	if s.Post != nil {
		post = &Block{Kind: "for.post"}
	}

	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}

	if label != "" {
		b.labels[label].breakTarget = after
		b.labels[label].continueTarget = post
	}
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, post)
	b.current = body
	b.stmtList(s.Body.List)
	b.edge(b.current, post)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]

	if s.Post != nil {
		b.register(post)
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
	}
	b.register(after)
	b.current = after
	if len(after.Preds) == 0 {
		b.current = nil // for { ... } with no break never exits
	}
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.newBlock("range.head")
	b.startBlock(head)
	b.add(s) // the range statement itself defines key/value at the head
	body := b.newBlock("range.body")
	after := &Block{Kind: "range.after"}
	b.edge(head, body)
	b.edge(head, after)

	if label != "" {
		b.labels[label].breakTarget = after
		b.labels[label].continueTarget = head
	}
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, head)
	b.current = body
	b.stmtList(s.Body.List)
	b.edge(b.current, head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]

	b.register(after)
	b.current = after
}

// switchStmt lowers switch and type-switch: head fans out to each case
// clause; fallthrough chains a case to the next; every case end reaches the
// after block, as does the head itself when no default clause exists.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, kind string) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.ensureCurrent()
	after := &Block{Kind: kind + ".after"}
	if label != "" {
		b.labels[label].breakTarget = after
	}
	b.breaks = append(b.breaks, after)

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	// Create every case block up front so fallthrough edges have a target.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		k := kind + ".case"
		if cc.List == nil {
			k = kind + ".default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(k)
		b.edge(head, blocks[i])
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
	}
	for i, cc := range clauses {
		b.current = blocks[i]
		b.stmtList(cc.Body)
		if fallthroughEnd(cc.Body) && i+1 < len(clauses) {
			b.edge(b.current, blocks[i+1])
		} else {
			b.edge(b.current, after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.register(after)
	b.current = after
}

func fallthroughEnd(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.ensureCurrent()
	head.Nodes = append(head.Nodes, s)
	after := &Block{Kind: "select.after"}
	if label != "" {
		b.labels[label].breakTarget = after
	}
	b.breaks = append(b.breaks, after)
	any := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		k := "select.case"
		if cc.Comm == nil {
			k = "select.default"
		}
		blk := b.newBlock(k)
		b.edge(head, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.current = blk
		b.stmtList(cc.Body)
		b.edge(b.current, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.register(after)
	b.current = after
	if !any {
		// select{} blocks forever: after is unreachable.
		b.current = nil
	}
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	// The labeled statement starts a fresh block so gotos have a target.
	target := b.newBlock("label." + name)
	b.startBlock(target)
	li.target = target
	b.pendingLabel = name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	cur := b.current
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.breakTarget != nil {
				b.edge(cur, li.breakTarget)
			}
		} else if n := len(b.breaks); n > 0 {
			b.edge(cur, b.breaks[n-1])
		}
		b.current = nil
	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.continueTarget != nil {
				b.edge(cur, li.continueTarget)
			}
		} else if n := len(b.continues); n > 0 {
			b.edge(cur, b.continues[n-1])
		}
		b.current = nil
	case token.GOTO:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.target != nil {
				b.edge(cur, li.target)
			} else {
				b.gotoFixes[s.Label.Name] = append(b.gotoFixes[s.Label.Name], cur)
			}
		}
		b.current = nil
	case token.FALLTHROUGH:
		// Edge handled by switchStmt; the statement itself is recorded above.
	}
}

// isPanicCall matches a direct call to the builtin panic. (Resolution-free:
// shadowing panic with a local function is not a pattern this codebase has.)
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// ---- path queries and dumps ----

// EveryPathHits reports whether every path from `from` to the exit block
// passes through at least one block for which hit returns true. hit is
// evaluated per block (typically "contains a join node"). from itself is
// consulted too.
func (c *CFG) EveryPathHits(from *Block, hit func(*Block) bool) bool {
	// A path avoiding all hit-blocks exists iff exit is reachable from
	// `from` through non-hit blocks only.
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{from}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk.Index] {
			continue
		}
		seen[blk.Index] = true
		if hit(blk) {
			continue // path is intercepted here
		}
		if blk == c.Exit {
			return false
		}
		stack = append(stack, blk.Succs...)
	}
	return true
}

// BlockOf returns the block holding n: the block whose Nodes contain n
// itself, or failing that the block whose smallest node's position range
// contains n. (Smallest-container wins because a head block may hold a
// statement — a RangeStmt, a SelectStmt — whose source range spans the body
// blocks lowered out of it.)
func (c *CFG) BlockOf(n ast.Node) *Block {
	var best *Block
	var bestSpan token.Pos = -1
	for _, blk := range c.Blocks {
		for _, node := range blk.Nodes {
			if node == n {
				return blk
			}
			if node.Pos() <= n.Pos() && n.End() <= node.End() {
				span := node.End() - node.Pos()
				if bestSpan < 0 || span < bestSpan {
					best, bestSpan = blk, span
				}
			}
		}
	}
	if best != nil {
		return best
	}
	// n was decomposed across blocks (an IfStmt stores only its Cond, a
	// ForStmt only its clauses): answer with the block holding n's earliest
	// constituent — its head.
	var headPos token.Pos = -1
	for _, blk := range c.Blocks {
		for _, node := range blk.Nodes {
			if n.Pos() <= node.Pos() && node.End() <= n.End() {
				if headPos < 0 || node.Pos() < headPos {
					best, headPos = blk, node.Pos()
				}
			}
		}
	}
	return best
}

// Dump renders the CFG as one line per block:
//
//	b0 entry [stmt; stmt] -> b1 b2
//
// with statements compacted to single-line source snippets. The output is
// deterministic and used by the golden CFG tests.
func (c *CFG) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			parts := make([]string, len(blk.Nodes))
			for i, n := range blk.Nodes {
				parts[i] = nodeSnippet(fset, n)
			}
			fmt.Fprintf(&sb, " [%s]", strings.Join(parts, "; "))
		}
		if len(blk.Succs) > 0 {
			succs := make([]int, len(blk.Succs))
			for i, s := range blk.Succs {
				succs[i] = s.Index
			}
			sort.Ints(succs)
			sb.WriteString(" ->")
			for _, s := range succs {
				fmt.Fprintf(&sb, " b%d", s)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// nodeSnippet renders n as a single line of at most 40 runes.
func nodeSnippet(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if rs, ok := n.(*ast.RangeStmt); ok {
		// Render only the range header, not the body.
		n = &ast.RangeStmt{Key: rs.Key, Value: rs.Value, Tok: rs.Tok, X: rs.X,
			Body: &ast.BlockStmt{}, For: rs.For, TokPos: rs.TokPos, Range: rs.Range}
	}
	if sel, ok := n.(*ast.SelectStmt); ok {
		_ = sel
		return "select"
	}
	if err := cfg.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	if r := []rune(s); len(r) > 40 {
		s = string(r[:37]) + "..."
	}
	return s
}
