package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatKey flags floating-point values used where exact bit equality decides
// behavior:
//
//   - floats as map keys: two mathematically equal results of different
//     evaluation orders hash to different keys (and NaN never finds itself),
//     so lookups silently depend on rounding history;
//   - ==/!= between two computed floats: almost always wants an epsilon
//     comparison (math.Abs(a-b) <= tol).
//
// Comparisons against constants (x != 0 division guards, sentinel values)
// and tie-breakers inside sort.Slice/sort.SliceStable closures or Less
// methods are exempt: they are exact on purpose and deterministic. Anything
// else that is genuinely intentional can carry
// //lint:ignore floatkey <reason>.
func FloatKey() *Analyzer {
	return &Analyzer{
		Name: "floatkey",
		Doc:  "float map keys and exact float ==/!= comparisons outside epsilon helpers",
		Run:  runFloatKey,
	}
}

func runFloatKey(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.MapType:
				if isFloat(p.Info.TypeOf(x.Key)) {
					out = append(out, p.finding("floatkey", x.Pos(),
						"float map key: equality is exact bit equality, so rounding history decides membership; key by int or string instead"))
				}
			case *ast.BinaryExpr:
				if f := checkFloatEquality(p, x, stack); f != nil {
					out = append(out, *f)
				}
			}
			return true
		})
	}
	return out
}

func checkFloatEquality(p *Package, be *ast.BinaryExpr, stack []ast.Node) *Finding {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return nil
	}
	if !isFloat(p.Info.TypeOf(be.X)) || !isFloat(p.Info.TypeOf(be.Y)) {
		return nil
	}
	// Constants are exact: x == 0 and friends are deliberate guards.
	if isConstExpr(p.Info, be.X) || isConstExpr(p.Info, be.Y) {
		return nil
	}
	if inSortTieBreak(p, stack) {
		return nil
	}
	f := p.finding("floatkey", be.Pos(),
		"exact float %s comparison between computed values; use an epsilon (math.Abs(a-b) <= tol) or //lint:ignore floatkey <reason> if exact compare is intended", be.Op)
	return &f
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// inSortTieBreak reports whether the expression sits inside a comparator: a
// func literal passed to a sort/slices call, or a Less method/function.
// Exact float comparison there is the standard deterministic tie-break
// idiom (if a.Q != b.Q { return a.Q > b.Q }).
func inSortTieBreak(p *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			if i > 0 && funcLitPassedToSort(p, f, stack[i-1]) {
				return true
			}
		case *ast.FuncDecl:
			if f.Name.Name == "Less" || f.Name.Name == "less" {
				return true
			}
			return false
		}
	}
	return false
}

func funcLitPassedToSort(p *Package, lit *ast.FuncLit, parent ast.Node) bool {
	call, ok := parent.(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := selectorCallAnyPath(p, call, "sort", "slices")
	if !ok {
		return false
	}
	switch name {
	case "Slice", "SliceStable", "SliceIsSorted", "Search", "SortFunc", "SortStableFunc", "IsSortedFunc", "BinarySearchFunc":
	default:
		return false
	}
	for _, arg := range call.Args {
		if arg == lit {
			return true
		}
	}
	return false
}
