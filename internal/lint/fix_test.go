package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkFixGolden runs analyzer a over testdata/fix/<dir>, applies every
// suggested fix, and then holds the result to three bars:
//
//  1. byte-identical to the .golden file next to the fixture;
//  2. it recompiles — the fixed sources type-check in a scratch module;
//  3. it re-lints clean — the analyzer reports nothing on the fixed code.
func checkFixGolden(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "fix", dir))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loaderForTest(t).Load(abs)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkg, []*Analyzer{a})
	if len(findings) == 0 {
		t.Fatal("fix fixture produced no findings")
	}
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			t.Errorf("finding without a suggested fix in a fix fixture: %s", f)
		}
	}

	fixed, err := ApplyFixes(findings, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) == 0 {
		t.Fatal("ApplyFixes rewrote no files")
	}
	for file, got := range fixed {
		want, err := os.ReadFile(file + ".golden")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: fixed output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", file, got, want)
		}
	}

	// Recompile and re-lint the fixed sources in a scratch module.
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module fixscratch\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for file, got := range fixed {
		if err := os.WriteFile(filepath.Join(tmp, filepath.Base(file)), got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	scratch, err := NewLoader(tmp)
	if err != nil {
		t.Fatal(err)
	}
	repkg, err := scratch.Load(tmp)
	if err != nil {
		t.Fatalf("fixed sources do not recompile: %v", err)
	}
	if re := Run(repkg, []*Analyzer{a}); len(re) != 0 {
		t.Errorf("fixed sources still flagged by %s: %v", a.Name, re)
	}
}

func TestCtxFlowFixGolden(t *testing.T)  { checkFixGolden(t, "ctxflow", CtxFlow()) }
func TestMapOrderFixGolden(t *testing.T) { checkFixGolden(t, "maporder", MapOrder()) }

// The fix must only be offered when the sibling's signature matches the
// callee's exactly (modulo the prepended context): the main ctxflow fixture
// has both shapes.
func TestCtxFlowFixGatedOnSignature(t *testing.T) {
	abs, err := filepath.Abs(filepath.Join("testdata", "ctxflow"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loaderForTest(t).Load(abs)
	if err != nil {
		t.Fatal(err)
	}
	var incompatible, compatible bool
	for _, f := range Run(pkg, []*Analyzer{CtxFlow()}) {
		switch {
		case strings.Contains(f.Message, "call to process drops"):
			incompatible = true
			if len(f.Fixes) != 0 {
				t.Errorf("fix offered for incompatible sibling (processContext adds an error result): %s", f)
			}
		case strings.Contains(f.Message, "call to Run drops"):
			compatible = true
			if len(f.Fixes) == 0 {
				t.Errorf("no fix offered for signature-compatible sibling kmeans.RunContext: %s", f)
			}
		}
	}
	if !incompatible || !compatible {
		t.Fatalf("fixture shapes missing (incompatible=%v compatible=%v)", incompatible, compatible)
	}
}

func TestApplyEditsRejectsOverlapAndDedupes(t *testing.T) {
	src := []byte("abcdef")
	got, err := applyEdits(src, []TextEdit{
		{Offset: 1, End: 3, NewText: "X"},
		{Offset: 1, End: 3, NewText: "X"}, // exact duplicate collapses
		{Offset: 4, End: 5, NewText: "YY"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aXdYYf" {
		t.Errorf("applyEdits = %q, want %q", got, "aXdYYf")
	}
	if _, err := applyEdits(src, []TextEdit{
		{Offset: 1, End: 4, NewText: "X"},
		{Offset: 2, End: 5, NewText: "Y"},
	}); err == nil {
		t.Error("overlapping conflicting edits did not error")
	}
}
