package lint

import (
	"go/ast"
)

// RngEscape flags a *rand.Rand value crossing a parallel.For/Each/Map
// boundary indirectly — through a struct field, a channel, or a worker
// closure's return value. sharedrng catches the direct capture; this rule
// catches the laundered versions:
//
//   - an rng stored into a struct field whose struct the worker closures
//     touch (workers then share the generator through the field);
//   - an rng sent on a channel the workers read, or sent from inside a
//     worker (the generator hops goroutines mid-stream);
//   - a worker closure returning its rng (parallel.Map collecting
//     generators publishes per-worker state).
//
// All of them break the draw-sequence determinism the per-task
// rand.New(rand.NewSource(cfg.Seed + int64(task))) pattern guarantees.
func RngEscape() *Analyzer {
	return &Analyzer{
		Name: "rngescape",
		Doc:  "*rand.Rand reaching a struct field/channel/return across a parallel boundary",
		Run:  runRngEscape,
	}
}

func runRngEscape(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, rngEscapeInFunc(p, fn.Body)...)
		}
	}
	return out
}

// parClosure is one worker closure handed to a parallel entry point.
type parClosure struct {
	lit *ast.FuncLit
	fn  string // For / Each / Map / MapReduce
}

func rngEscapeInFunc(p *Package, body *ast.BlockStmt) []Finding {
	closures := parallelClosures(p, body)
	if len(closures) == 0 {
		return nil
	}

	// inside reports which worker closure (if any) contains pos.
	inside := func(n ast.Node) (string, bool) {
		for _, c := range closures {
			if insideNode(c.lit, n) {
				return c.fn, true
			}
		}
		return "", false
	}
	// sharedWithWorkers reports whether the container expression's root
	// variable is touched inside any worker closure.
	sharedWithWorkers := func(container ast.Expr) (string, bool) {
		root := rootIdent(container)
		if root == nil {
			return "", false
		}
		obj := objectOf(p.Info, root)
		if obj == nil {
			return "", false
		}
		for _, c := range closures {
			if mentionsObject(p.Info, c.lit.Body, obj) {
				return c.fn, true
			}
		}
		return "", false
	}

	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || i >= len(x.Rhs) && len(x.Rhs) != 1 {
					continue
				}
				rhs := x.Rhs[0]
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				t := p.Info.TypeOf(rhs)
				if t == nil || !isRandRand(t) {
					continue
				}
				if fn, ok := inside(x); ok {
					out = append(out, p.finding("rngescape", x.Pos(),
						"*rand.Rand stored into field %s from inside a parallel.%s worker: the generator escapes the worker; keep per-task generators local", fieldName(sel), fn))
				} else if fn, ok := sharedWithWorkers(sel.X); ok {
					out = append(out, p.finding("rngescape", x.Pos(),
						"*rand.Rand stored into field %s of a struct the parallel.%s workers touch: workers share the generator through the field; derive one generator per task from the config seed", fieldName(sel), fn))
				}
			}
		case *ast.SendStmt:
			t := p.Info.TypeOf(x.Value)
			if t == nil || !isRandRand(t) {
				return true
			}
			if fn, ok := inside(x); ok {
				out = append(out, p.finding("rngescape", x.Pos(),
					"*rand.Rand sent on a channel from inside a parallel.%s worker: the generator hops goroutines mid-stream; keep per-task generators local", fn))
			} else if fn, ok := sharedWithWorkers(x.Chan); ok {
				out = append(out, p.finding("rngescape", x.Pos(),
					"*rand.Rand sent on a channel the parallel.%s workers read: the generator crosses the worker boundary; derive one generator per task from the config seed", fn))
			}
		case *ast.ReturnStmt:
			fn, ok := inside(x)
			if !ok {
				return true
			}
			for _, r := range x.Results {
				t := p.Info.TypeOf(r)
				if t != nil && isRandRand(t) {
					out = append(out, p.finding("rngescape", r.Pos(),
						"parallel.%s worker returns its *rand.Rand: per-worker generator state is published across the boundary; return drawn values, not the generator", fn))
				}
			}
		}
		return true
	})
	return out
}

// parallelClosures collects every FuncLit passed directly to a
// parallel.For/Each/Map/MapReduce call under body.
func parallelClosures(p *Package, body *ast.BlockStmt) []parClosure {
	var out []parClosure
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := parallelCall(p, call)
		if !ok || !parallelEntryPoints[name] {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, parClosure{lit: lit, fn: name})
			}
		}
		return true
	})
	return out
}

func fieldName(sel *ast.SelectorExpr) string {
	if root := rootIdent(sel.X); root != nil {
		return root.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
