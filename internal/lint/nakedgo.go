package lint

import (
	"go/ast"
	"strings"
)

// NakedGo flags go statements anywhere but internal/parallel. Funneling all
// fan-out through one package is what lets a single knob (SetWorkers /
// MULTICLUST_WORKERS) govern the whole library, keeps -race coverage focused,
// and preserves the determinism contract: parallel's helpers decide only
// WHERE work runs, never what it computes. A stray goroutine elsewhere
// reintroduces scheduling-dependent behavior the suite cannot see.
func NakedGo() *Analyzer {
	return &Analyzer{
		Name: "nakedgo",
		Doc:  "go statements outside internal/parallel",
		Run:  runNakedGo,
	}
}

func runNakedGo(p *Package) []Finding {
	if p.Path == "internal/parallel" || strings.HasSuffix(p.Path, "/internal/parallel") {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				out = append(out, p.finding("nakedgo", g.Pos(),
					"naked go statement outside internal/parallel; route fan-out through parallel.For/Each/Map so one knob governs worker counts and determinism"))
			}
			return true
		})
	}
	return out
}
