package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF renders findings as a SARIF 2.1.0 log — the format GitHub code
// scanning ingests. One run, one tool ("multiclust-lint"), one result per
// finding; artifact URIs are emitted relative to root (the repository root)
// with %SRCROOT% as the base id, which is what the upload-sarif action
// expects. Suggested fixes become SARIF fixes with byte-offset replacements.
//
// The structs mirror just the subset of the SARIF schema this tool emits;
// field names follow the spec exactly so the output validates against the
// official JSON schema.
func SARIF(findings []Finding, rules []*Analyzer, root string) ([]byte, error) {
	driver := sarifDriver{
		Name:           "multiclust-lint",
		InformationURI: "https://github.com/multiclust/multiclust",
		Rules:          make([]sarifRule, len(rules)),
	}
	ruleIndex := map[string]int{}
	for i, a := range rules {
		driver.Rules[i] = sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		}
		ruleIndex[a.Name] = i
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := sarifURI(f.Pos.Filename, root)
		res := sarifResult{
			RuleID:  f.Rule,
			Level:   "warning",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		}
		if idx, ok := ruleIndex[f.Rule]; ok {
			res.RuleIndex = &idx
		}
		for _, fix := range f.Fixes {
			res.Fixes = append(res.Fixes, sarifFix{
				Description:     sarifText{Text: fix.Message},
				ArtifactChanges: sarifChanges(fix, root),
			})
		}
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: driver},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

func sarifURI(filename, root string) string {
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		filename = rel
	}
	return filepath.ToSlash(filename)
}

func sarifChanges(fix SuggestedFix, root string) []sarifArtifactChange {
	perFile := map[string][]sarifReplacement{}
	var order []string
	for _, e := range fix.Edits {
		uri := sarifURI(e.Filename, root)
		if _, ok := perFile[uri]; !ok {
			order = append(order, uri)
		}
		perFile[uri] = append(perFile[uri], sarifReplacement{
			DeletedRegion:   sarifByteRegion{CharOffset: e.Offset, CharLength: e.End - e.Offset},
			InsertedContent: sarifText{Text: e.NewText},
		})
	}
	out := make([]sarifArtifactChange, 0, len(order))
	for _, uri := range order {
		out = append(out, sarifArtifactChange{
			ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: "%SRCROOT%"},
			Replacements:     perFile[uri],
		})
	}
	return out
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex *int            `json:"ruleIndex,omitempty"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifFix struct {
	Description     sarifText             `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Replacements     []sarifReplacement    `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifByteRegion `json:"deletedRegion"`
	InsertedContent sarifText       `json:"insertedContent"`
}

type sarifByteRegion struct {
	CharOffset int `json:"charOffset"`
	CharLength int `json:"charLength"`
}
