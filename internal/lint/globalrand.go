package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand flags use of math/rand's global generator and time-seeded RNG
// construction. Replayability requires every random decision to flow from a
// config Seed through an explicitly threaded *rand.Rand:
//
//   - rand.Intn(…), rand.Float64(), rand.Shuffle(…), rand.Perm(…), … use the
//     package-level generator, whose state is shared process-wide and cannot
//     be replayed per algorithm run;
//   - rand.New(rand.NewSource(time.Now().UnixNano())) produces a different
//     stream every invocation, so two "identical" runs diverge.
//
// Constructing generators with rand.New / rand.NewSource / rand.NewZipf from
// a config Seed is the approved pattern.
func GlobalRand() *Analyzer {
	return &Analyzer{
		Name: "globalrand",
		Doc:  "global math/rand functions or time-seeded sources in library code",
		Run:  runGlobalRand,
	}
}

// Constructors are fine: they build an explicit generator instead of using
// the package-level one.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

const (
	mathRandPath   = "math/rand"
	mathRandV2Path = "math/rand/v2"
)

func runGlobalRand(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path := pkgName(p.Info, base)
			if path != mathRandPath && path != mathRandV2Path {
				return true
			}
			// Referencing the rand.Rand / rand.Source types is fine — that is
			// exactly how an explicitly threaded generator is declared.
			if _, isType := p.Info.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			name := sel.Sel.Name
			if !randConstructors[name] {
				out = append(out, p.finding("globalrand", sel.Pos(),
					"global rand.%s uses process-wide RNG state; construct a *rand.Rand from a config Seed and thread it explicitly", name))
				return true
			}
			return true
		})
		// Second pass: constructors seeded from the clock.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := selectorCallAnyPath(p, call, mathRandPath, mathRandV2Path)
			if !ok || !randConstructors[name] {
				return true
			}
			for _, arg := range call.Args {
				if callsTimeNow(p, arg) {
					out = append(out, p.finding("globalrand", call.Pos(),
						"rand.%s seeded from time.Now: two identical runs diverge; seed from the algorithm config instead", name))
					break
				}
			}
			return true
		})
	}
	return out
}

func selectorCallAnyPath(p *Package, call *ast.CallExpr, paths ...string) (string, bool) {
	for _, path := range paths {
		if name, ok := selectorCall(p.Info, call, path); ok {
			return name, true
		}
	}
	return "", false
}

func callsTimeNow(p *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if name, ok := selectorCall(p.Info, call, "time"); ok && name == "Now" {
			found = true
		}
		return !found
	})
	return found
}
