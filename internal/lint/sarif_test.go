package lint

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// The SARIF output must have the 2.1.0 shape GitHub code scanning ingests:
// $schema/version at the top, one run with a tool.driver carrying the rule
// metadata, and results whose locations resolve file/line against %SRCROOT%.
func TestSARIFShape(t *testing.T) {
	abs, err := filepath.Abs(filepath.Join("testdata", "fix", "maporder"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loaderForTest(t).Load(abs)
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*Analyzer{MapOrder()}
	findings := Run(pkg, analyzers)
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	out, err := SARIF(findings, analyzers, root)
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Fixes []struct {
					ArtifactChanges []struct {
						Replacements []struct {
							DeletedRegion struct {
								CharOffset int `json:"charOffset"`
								CharLength int `json:"charLength"`
							} `json:"deletedRegion"`
							InsertedContent struct {
								Text string `json:"text"`
							} `json:"insertedContent"`
						} `json:"replacements"`
					} `json:"artifactChanges"`
				} `json:"fixes"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("$schema missing")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "multiclust-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 1 || run.Tool.Driver.Rules[0].ID != "maporder" {
		t.Errorf("rule metadata wrong: %+v", run.Tool.Driver.Rules)
	}
	if run.Tool.Driver.Rules[0].ShortDescription.Text == "" {
		t.Error("rule shortDescription empty")
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("results = %d, findings = %d", len(run.Results), len(findings))
	}
	for i, res := range run.Results {
		if res.RuleID != "maporder" || res.Level != "warning" || res.Message.Text == "" {
			t.Errorf("result %d fields wrong: %+v", i, res)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d: want 1 location", i)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "internal/lint/testdata/fix/maporder/maporder.go" {
			t.Errorf("result %d: uri = %q (not repo-root relative?)", i, loc.ArtifactLocation.URI)
		}
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %d: uriBaseId = %q", i, loc.ArtifactLocation.URIBaseID)
		}
		if loc.Region.StartLine == 0 {
			t.Errorf("result %d: startLine missing", i)
		}
		if len(res.Fixes) == 0 || len(res.Fixes[0].ArtifactChanges) == 0 ||
			len(res.Fixes[0].ArtifactChanges[0].Replacements) == 0 {
			t.Errorf("result %d: suggested fix not carried into SARIF", i)
		}
	}
}

func TestCheckCleanWorktree(t *testing.T) {
	tmp := t.TempDir()
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", tmp}, args...)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Skipf("git unavailable (%v): %s", err, out)
		}
	}
	// Not a repository: nothing to guard, must pass.
	if err := CheckCleanWorktree(tmp); err != nil {
		t.Fatalf("non-repo dir should pass: %v", err)
	}
	git("init", "-q")
	if err := os.WriteFile(filepath.Join(tmp, "f.txt"), []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := CheckCleanWorktree(tmp)
	if err == nil {
		t.Fatal("dirty worktree passed the gate")
	}
	if !errors.Is(err, ErrDirtyWorktree) {
		t.Fatalf("error is not ErrDirtyWorktree: %v", err)
	}
	git("add", ".")
	git("-c", "user.email=t@t", "-c", "user.name=t", "commit", "-q", "-m", "seed")
	if err := CheckCleanWorktree(tmp); err != nil {
		t.Fatalf("clean worktree failed the gate: %v", err)
	}
}
