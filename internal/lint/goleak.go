package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags a goroutine spawned in a function that can return without
// reaching the corresponding join — a WaitGroup Wait or a channel receive —
// on some CFG path. The classic shape is an early error return between the
// spawn and the Wait: the goroutine outlives the request that started it,
// which under a bounded worker pool is a slow leak that eventually starves
// the service.
//
// Two spawn shapes are exempt:
//
//   - detached-but-tracked goroutines, whose synchronization handles
//     (channels, WaitGroups) are struct fields, package variables, or
//     otherwise outlive the function — their lifecycle is managed by a peer
//     (e.g. ops.Handle's Serve goroutine joined by Shutdown);
//   - spawns whose join is deferred (defer wg.Wait()), which by definition
//     runs on every return path.
//
// nakedgo already restricts go statements to internal/parallel; this rule
// checks the paths around the spawns that are allowed to exist.
func GoLeak() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "goroutine spawn with an early-return path that skips its Wait/receive join",
		Run:  runGoLeak,
	}
}

func runGoLeak(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, goLeakInFunc(p, fn, fn.Body)...)
		}
	}
	return out
}

func goLeakInFunc(p *Package, fn *ast.FuncDecl, body *ast.BlockStmt) []Finding {
	var spawns []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			// Spawns inside nested closures run on the closure's own CFG;
			// analyzing them against the outer function's paths would lie.
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
		return true
	})
	if len(spawns) == 0 {
		return nil
	}

	cfg := BuildCFG(body)
	var out []Finding
	for _, g := range spawns {
		handles := spawnHandles(p, g)
		if len(handles) == 0 {
			// No channel/WaitGroup in sight: nothing to join on at all.
			out = append(out, p.finding("goleak", g.Pos(),
				"goroutine has no WaitGroup or channel to join on; it can outlive %s on every return path", fn.Name.Name))
			continue
		}
		if !handlesAreLocal(p, handles, fn) {
			continue // detached-but-tracked: lifecycle owned elsewhere
		}
		if handlesEscape(p, handles, g, body) {
			continue // a returned/stored handle transfers join duty to the caller
		}
		if deferredJoin(p, cfg, handles) {
			continue // defer wg.Wait() runs on every path
		}
		blk := cfg.BlockOf(g)
		if blk == nil {
			continue
		}
		joined := cfg.EveryPathHits(blk, func(b *Block) bool {
			for _, n := range b.Nodes {
				if b == blk && n.Pos() <= g.Pos() {
					continue // joins before the spawn don't cover it
				}
				if containsJoin(p, n, handles) {
					return true
				}
			}
			return false
		})
		if !joined {
			out = append(out, p.finding("goleak", g.Pos(),
				"goroutine can leak: a return path exits %s without reaching its Wait/channel-receive join; join on every path or defer the Wait", fn.Name.Name))
		}
	}
	return out
}

// spawnHandles collects the synchronization objects the spawned goroutine
// signals through: channels it sends on or closes, and WaitGroups it calls
// Done/Add on (or that are referenced at all inside the spawn).
func spawnHandles(p *Package, g *ast.GoStmt) map[types.Object]bool {
	handles := map[types.Object]bool{}
	collect := func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj := objectOf(p.Info, id)
			if obj == nil || !isVar(obj) {
				return true
			}
			if isSyncHandleType(obj.Type()) {
				handles[obj] = true
			}
			return true
		})
	}
	collect(g.Call)
	return handles
}

// isSyncHandleType: channels and sync.WaitGroup (by value or pointer).
func isSyncHandleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
	}
	return false
}

// handlesAreLocal reports whether at least one handle is a local variable of
// fn (incl. parameters). If every handle escapes (struct fields reached via
// pointers, package-level vars), the goroutine is detached-but-tracked.
func handlesAreLocal(p *Package, handles map[types.Object]bool, fn *ast.FuncDecl) bool {
	for obj := range handles {
		if obj.Pos() != token.NoPos && fn.Pos() <= obj.Pos() && obj.Pos() < fn.End() {
			// Skip fields of locally built structs? A *Handle built locally
			// whose field channel is the handle: the field var is declared at
			// the type, not in fn, so it already reads as escaping.
			return true
		}
	}
	return false
}

// handlesEscape reports whether some handle leaves the function: returned,
// stored into a field/element/map, wrapped into a composite literal, or
// passed to another call (which may take over the join). Escaped handles
// make the leak question the caller's, not this function's.
func handlesEscape(p *Package, handles map[types.Object]bool, g *ast.GoStmt, body *ast.BlockStmt) bool {
	mentionsHandle := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				if obj := objectOf(p.Info, id); obj != nil && handles[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if mentionsHandle(r) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if _, plain := lhs.(*ast.Ident); plain {
					continue // rebinding a local is not an escape
				}
				if i < len(x.Rhs) && mentionsHandle(x.Rhs[i]) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if mentionsHandle(elt) {
					escaped = true
				}
			}
		case *ast.CallExpr:
			if n == g.Call || insideNode(g, n) {
				return true
			}
			// close(ch), len/cap, and the builtin family don't transfer
			// ownership; any other callee receiving the handle might.
			if id, ok := x.Fun.(*ast.Ident); ok {
				if _, builtin := objectOf(p.Info, id).(*types.Builtin); builtin {
					return true
				}
			}
			for _, arg := range x.Args {
				if mentionsHandle(arg) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

// insideNode reports whether inner lies within outer's source range.
func insideNode(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// deferredJoin reports whether any deferred statement in the function joins
// one of the handles.
func deferredJoin(p *Package, cfg *CFG, handles map[types.Object]bool) bool {
	for _, d := range cfg.Defers {
		if containsJoin(p, d.Call, handles) {
			return true
		}
		// defer func() { wg.Wait() }()
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && containsJoin(p, lit.Body, handles) {
			return true
		}
	}
	return false
}

// containsJoin reports whether n contains a join on one of the handles: a
// receive from a handle channel, a range over it, or a Wait() call on a
// handle WaitGroup.
func containsJoin(p *Package, n ast.Node, handles map[types.Object]bool) bool {
	found := false
	isHandle := func(e ast.Expr) bool {
		root := rootIdent(e)
		if root == nil {
			return false
		}
		obj := objectOf(p.Info, root)
		return obj != nil && handles[obj]
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && isHandle(v.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isHandle(v.X) {
				if t := p.Info.TypeOf(v.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						found = true
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isHandle(sel.X) {
				found = true
			}
		}
		return !found
	})
	return found
}
