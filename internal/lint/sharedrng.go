package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SharedRNG flags a *rand.Rand captured by a closure handed to the
// internal/parallel helpers (For, Each, Map, MapReduce). Worker goroutines
// would then share one generator, which is both a data race (*rand.Rand is
// not safe for concurrent use) and nondeterministic (the interleaving decides
// who draws which variate). The approved pattern — used by the k-means
// restart fan-out — derives an independent generator per task from the
// config seed: rand.New(rand.NewSource(cfg.Seed + int64(task))).
func SharedRNG() *Analyzer {
	return &Analyzer{
		Name: "sharedrng",
		Doc:  "*rand.Rand captured by a closure passed to parallel.For/Each/Map/MapReduce",
		Run:  runSharedRNG,
	}
}

var parallelEntryPoints = map[string]bool{
	"For":       true,
	"Each":      true,
	"Map":       true,
	"MapReduce": true,
}

func runSharedRNG(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := parallelCall(p, call)
			if !ok || !parallelEntryPoints[name] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				out = append(out, capturedRands(p, lit, name)...)
			}
			return true
		})
	}
	return out
}

// parallelCall matches pkg.Fn(...) where pkg is an import whose path ends in
// internal/parallel (suffix match so fixtures under a synthetic module path
// exercise the real rule).
func parallelCall(p *Package, call *ast.CallExpr) (string, bool) {
	fun := call.Fun
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = x.X
	case *ast.IndexListExpr:
		fun = x.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	path := pkgName(p.Info, base)
	if path != "internal/parallel" && !strings.HasSuffix(path, "/internal/parallel") {
		return "", false
	}
	return sel.Sel.Name, true
}

// capturedRands reports each distinct *rand.Rand variable that lit uses but
// does not declare.
func capturedRands(p *Package, lit *ast.FuncLit, fnName string) []Finding {
	var out []Finding
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objectOf(p.Info, id)
		if obj == nil || seen[obj] || !isVar(obj) || !isRandRand(obj.Type()) {
			return true
		}
		if !declaredOutside(p.Info, id, lit) {
			return true
		}
		seen[obj] = true
		out = append(out, p.finding("sharedrng", id.Pos(),
			"*rand.Rand %q is shared across parallel.%s workers: data race and nondeterministic draws; derive one generator per task from the config seed", id.Name, fnName))
		return true
	})
	return out
}

func isRandRand(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return obj.Name() == "Rand" && (path == mathRandPath || path == mathRandV2Path)
}
