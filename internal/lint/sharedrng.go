package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SharedRNG flags a *rand.Rand captured by a closure handed to the
// internal/parallel helpers (For, Each, Map, MapReduce). Worker goroutines
// would then share one generator, which is both a data race (*rand.Rand is
// not safe for concurrent use) and nondeterministic (the interleaving decides
// who draws which variate). The approved pattern — used by the k-means
// restart fan-out — derives an independent generator per task from the
// config seed: rand.New(rand.NewSource(cfg.Seed + int64(task))).
func SharedRNG() *Analyzer {
	return &Analyzer{
		Name: "sharedrng",
		Doc:  "*rand.Rand captured by a closure passed to parallel.For/Each/Map/MapReduce",
		Run:  runSharedRNG,
	}
}

var parallelEntryPoints = map[string]bool{
	"For":       true,
	"Each":      true,
	"Map":       true,
	"MapReduce": true,
}

func runSharedRNG(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := parallelCall(p, call)
			if !ok || !parallelEntryPoints[name] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				out = append(out, capturedRands(p, lit, name)...)
			}
			return true
		})
	}
	return out
}

// parallelCall matches pkg.Fn(...) where pkg is an import whose path ends in
// internal/parallel (suffix match so fixtures under a synthetic module path
// exercise the real rule).
func parallelCall(p *Package, call *ast.CallExpr) (string, bool) {
	fun := call.Fun
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = x.X
	case *ast.IndexListExpr:
		fun = x.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	path := pkgName(p.Info, base)
	if path != "internal/parallel" && !strings.HasSuffix(path, "/internal/parallel") {
		return "", false
	}
	return sel.Sel.Name, true
}

// capturedRands reports each distinct shared generator that lit uses but
// does not declare: a captured *rand.Rand variable, a *rand.Rand struct
// field reached through a captured variable, or a method invoked on a
// captured value whose type holds a *rand.Rand field (the method draws from
// the shared generator on the workers' behalf).
func capturedRands(p *Package, lit *ast.FuncLit, fnName string) []Finding {
	var out []Finding
	seenObj := map[types.Object]bool{}
	seenSel := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			obj := objectOf(p.Info, x)
			if obj == nil || seenObj[obj] || !isVar(obj) || !isRandRand(obj.Type()) {
				return true
			}
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return true // reported by the selector case with field wording
			}
			if !declaredOutside(p.Info, x, lit) {
				return true
			}
			seenObj[obj] = true
			out = append(out, p.finding("sharedrng", x.Pos(),
				"*rand.Rand %q is shared across parallel.%s workers: data race and nondeterministic draws; derive one generator per task from the config seed", x.Name, fnName))
		case *ast.SelectorExpr:
			// s.rng where s is captured: the field is one generator shared
			// by every worker even though no *rand.Rand variable is captured.
			t := p.Info.TypeOf(x)
			if t == nil || !isRandRand(t) {
				return true
			}
			root := rootIdent(x.X)
			if root == nil || !isCapturedVar(p, root, lit) {
				return true
			}
			key := root.Name + "." + x.Sel.Name
			if seenSel[key] {
				return true
			}
			seenSel[key] = true
			out = append(out, p.finding("sharedrng", x.Pos(),
				"*rand.Rand field %q is shared across parallel.%s workers: data race and nondeterministic draws; derive one generator per task from the config seed", key, fnName))
		case *ast.CallExpr:
			// s.Draw() where s is captured and s's type holds a *rand.Rand
			// field: the method draws from the shared generator.
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvT := p.Info.TypeOf(sel.X)
			if recvT == nil || isRandRand(recvT) || !structHasRand(recvT) {
				return true
			}
			root := rootIdent(sel.X)
			if root == nil || !isCapturedVar(p, root, lit) {
				return true
			}
			key := root.Name + "." + sel.Sel.Name + "()"
			if seenSel[key] {
				return true
			}
			seenSel[key] = true
			out = append(out, p.finding("sharedrng", sel.Pos(),
				"method %s draws from a *rand.Rand field of captured %q inside parallel.%s workers: data race and nondeterministic draws; derive one generator per task from the config seed", sel.Sel.Name, root.Name, fnName))
		}
		return true
	})
	return out
}

// isCapturedVar reports whether id is a variable declared outside lit.
func isCapturedVar(p *Package, id *ast.Ident, lit *ast.FuncLit) bool {
	obj := objectOf(p.Info, id)
	return obj != nil && isVar(obj) && declaredOutside(p.Info, id, lit)
}

// structHasRand reports whether t (or its pointee) is a struct transitively
// holding a *rand.Rand field.
func structHasRand(t types.Type) bool {
	return structHasRandSeen(t, map[types.Type]bool{})
}

func structHasRandSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
		if seen[t] {
			return false
		}
		seen[t] = true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isRandRand(ft) || structHasRandSeen(ft, seen) {
			return true
		}
	}
	return false
}

func isRandRand(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return obj.Name() == "Rand" && (path == mathRandPath || path == mathRandV2Path)
}
