package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// MapOrder flags order-sensitive operations inside `for … range <map>`
// bodies. Go randomizes map iteration order per run, so any construct whose
// result depends on visit order breaks same-seed replay:
//
//   - floating-point accumulation (sum += v): float addition does not
//     commute in the last bits, so the total differs between runs — the
//     exact bug PR 1 fixed in metrics.Silhouette;
//   - appending to a slice declared outside the loop: element order differs
//     between runs;
//   - argmax/argmin updates (if v > best { best, bestKey = v, k }): ties —
//     and, for floats, order-dependent rounding upstream — make the winner
//     depend on which key is visited first.
//
// The one blessed pattern is the sorted-keys idiom used throughout
// internal/subspace/grid.go and internal/alternative/coala.go: collect keys
// (or values) into a slice and sort it before use. An append whose
// destination is sorted later in the same function is therefore not
// reported.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "order-sensitive float accumulation, appends, or argmax updates inside for-range over a map",
		Run:  runMapOrder,
	}
}

func runMapOrder(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := p.Info.TypeOf(rs.X); t == nil || !isMap(t) {
				return true
			}
			out = append(out, checkMapRange(p, rs, enclosingFuncBody(stack), file)...)
			return true
		})
	}
	return out
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the stack, used to look for a later sort of an appended
// slice.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

func checkMapRange(p *Package, rs *ast.RangeStmt, funcBody *ast.BlockStmt, file *ast.File) []Finding {
	var out []Finding
	keyObj := rangeVarObject(p.Info, rs.Key)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			out = append(out, checkMapRangeAssign(p, rs, stmt, keyObj, funcBody)...)
		case *ast.IfStmt:
			out = append(out, checkMapRangeArgmax(p, rs, stmt)...)
		}
		return true
	})
	// Every finding in this loop is resolved by the same rewrite: iterate
	// sorted keys. Offer it when the loop shape permits a mechanical version;
	// identical edits from multiple findings collapse in ApplyFixes.
	if len(out) > 0 {
		if fix, ok := sortedKeysFix(p, rs, funcBody, file); ok {
			for i := range out {
				out[i].Fixes = append(out[i].Fixes, fix)
			}
		}
	}
	return out
}

func rangeVarObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return objectOf(info, id)
}

func checkMapRangeAssign(p *Package, rs *ast.RangeStmt, stmt *ast.AssignStmt, keyObj types.Object, funcBody *ast.BlockStmt) []Finding {
	var out []Finding
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range stmt.Lhs {
			if !isFloat(p.Info.TypeOf(lhs)) {
				continue
			}
			root := rootIdent(lhs)
			if root == nil || !declaredOutside(p.Info, root, rs) {
				continue
			}
			// acc[k] op= v touches a distinct slot per key, so visit
			// order cannot matter.
			if ix, ok := lhs.(*ast.IndexExpr); ok && mentionsObject(p.Info, ix.Index, keyObj) {
				continue
			}
			out = append(out, p.finding("maporder", stmt.Pos(),
				"float accumulation into %q inside range over map: iteration order changes the rounding; iterate sorted keys instead", root.Name))
		}
	case token.ASSIGN, token.DEFINE:
		// x = append(x, ...) with x declared outside the loop.
		for i, rhs := range stmt.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p.Info, call) || i >= len(stmt.Lhs) {
				continue
			}
			root := rootIdent(stmt.Lhs[i])
			if root == nil || !declaredOutside(p.Info, root, rs) {
				continue
			}
			if destSortedAfter(p, funcBody, rs, objectOf(p.Info, root)) {
				continue // the sorted-keys idiom: order restored before use
			}
			out = append(out, p.finding("maporder", stmt.Pos(),
				"append to %q inside range over map: element order follows randomized map order; collect and sort keys first", root.Name))
		}
	}
	return out
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := objectOf(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// destSortedAfter reports whether funcBody contains, after the range loop, a
// sort call whose argument is dest — sort.Strings(keys), sort.Ints(keys),
// sort.Slice(keys, …), sort.Sort(byX(keys)), … This recognizes the blessed
// collect-then-sort idiom.
func destSortedAfter(p *Package, funcBody *ast.BlockStmt, rs *ast.RangeStmt, dest types.Object) bool {
	if funcBody == nil || dest == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		if name, ok := selectorCall(p.Info, call, "sort"); !ok || !isSortFunc(name) {
			return true
		}
		if root := rootIdent(call.Args[0]); root != nil && objectOf(p.Info, root) == dest {
			found = true
		}
		return true
	})
	return found
}

func isSortFunc(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
		return true
	}
	return false
}

// checkMapRangeArgmax flags `if <cmp against outer best> { best = … }`
// updates: ties between keys are broken by randomized visit order.
func checkMapRangeArgmax(p *Package, rs *ast.RangeStmt, ifStmt *ast.IfStmt) []Finding {
	cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return nil
	}
	// Outer variables compared in the condition, each paired with the
	// opposite operand of its comparison.
	type comparedVar struct {
		obj      types.Object
		opposite ast.Expr
	}
	var compared []comparedVar
	sides := [2]ast.Expr{cond.X, cond.Y}
	for i, side := range sides {
		if root := rootIdent(side); root != nil && declaredOutside(p.Info, root, rs) {
			if obj := objectOf(p.Info, root); obj != nil && isVar(obj) {
				compared = append(compared, comparedVar{obj, sides[1-i]})
			}
		}
	}
	if len(compared) == 0 {
		return nil
	}
	// …that the then-branch reassigns: the classic argmax/argmin update.
	// A pure running max/min — best = v guarded by v > best — is exempt:
	// the extremum VALUE is order-independent; only the tie-broken payload
	// assignments riding along (bestKey = k next to best = v) depend on
	// which key is visited first.
	type outerAssign struct {
		pos  token.Pos
		name string
		pure bool
	}
	var assigns []outerAssign
	argmaxShaped := false
	ast.Inspect(ifStmt.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			root := rootIdent(lhs)
			if root == nil || !declaredOutside(p.Info, root, rs) {
				continue
			}
			obj := objectOf(p.Info, root)
			if obj == nil || !isVar(obj) {
				continue
			}
			a := outerAssign{pos: assign.Pos(), name: root.Name}
			for _, cmp := range compared {
				if obj != cmp.obj {
					continue
				}
				argmaxShaped = true
				if i < len(assign.Rhs) &&
					types.ExprString(assign.Rhs[i]) == types.ExprString(cmp.opposite) {
					a.pure = true
				}
			}
			assigns = append(assigns, a)
		}
		return true
	})
	if !argmaxShaped {
		return nil
	}
	var out []Finding
	for _, a := range assigns {
		if a.pure {
			continue
		}
		out = append(out, p.finding("maporder", a.pos,
			"argmax/argmin update of %q inside range over map: ties are broken by randomized iteration order; iterate sorted keys or break ties explicitly", a.name))
	}
	return out
}

func isVar(obj types.Object) bool {
	_, ok := obj.(*types.Var)
	return ok
}

// sortedKeysFix builds the collect-then-sort rewrite for a range-over-map
// loop:
//
//	for k, v := range m { …         keys := make([]K, 0, len(m))
//	                          =>    for k := range m { keys = append(keys, k) }
//	                                sort.Slice(keys, …)
//	                                for _, k := range keys { v := m[k]; …
//
// Offered only when the rewrite is provably mechanical: `:=` loop, plain
// ident key of an ordered basic type (string/integer), plain ident (or
// absent) value, and a side-effect-free map expression that can be evaluated
// three times.
func sortedKeysFix(p *Package, rs *ast.RangeStmt, funcBody *ast.BlockStmt, file *ast.File) (SuggestedFix, bool) {
	if rs.Tok != token.DEFINE {
		return SuggestedFix{}, false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return SuggestedFix{}, false
	}
	mapT, ok := p.Info.TypeOf(rs.X).Underlying().(*types.Map)
	if !ok {
		return SuggestedFix{}, false
	}
	keyB, ok := mapT.Key().(*types.Basic)
	if !ok || keyB.Info()&(types.IsInteger|types.IsString) == 0 {
		return SuggestedFix{}, false
	}
	valName := ""
	if rs.Value != nil {
		valID, ok := rs.Value.(*ast.Ident)
		if !ok {
			return SuggestedFix{}, false
		}
		if valID.Name != "_" {
			valName = valID.Name
		}
	}
	if !pureRef(rs.X) {
		return SuggestedFix{}, false
	}
	if mutatesMap(p, rs) {
		// Deleting or inserting during iteration has different semantics
		// against a snapshot of the keys; leave that rewrite to a human.
		return SuggestedFix{}, false
	}
	mapSrc := types.ExprString(rs.X)
	keys := freshName("keys", p, funcBody)

	pos := p.position(rs.For)
	indent := strings.Repeat("\t", pos.Column-1)
	inner := indent + "\t"

	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keys, keyB.Name(), mapSrc)
	fmt.Fprintf(&b, "%sfor %s := range %s {\n", indent, keyID.Name, mapSrc)
	fmt.Fprintf(&b, "%s%s = append(%s, %s)\n", inner, keys, keys, keyID.Name)
	fmt.Fprintf(&b, "%s}\n", indent)
	fmt.Fprintf(&b, "%ssort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n", indent, keys, keys, keys)
	fmt.Fprintf(&b, "%sfor _, %s := range %s {", indent, keyID.Name, keys)
	if valName != "" {
		fmt.Fprintf(&b, "\n%s%s := %s[%s]", inner, valName, mapSrc, keyID.Name)
	}

	edits := []TextEdit{p.edit(rs.For, rs.Body.Lbrace+1, b.String())}
	if imp, ok := importEdit(p, file, "sort"); ok {
		edits = append(edits, imp)
	} else if !importsPackage(file, "sort") {
		return SuggestedFix{}, false
	}
	return SuggestedFix{
		Message: "iterate sorted keys (collect-then-sort idiom)",
		Edits:   edits,
	}, true
}

// mutatesMap reports whether the loop body deletes from or writes into the
// ranged-over map.
func mutatesMap(p *Package, rs *ast.RangeStmt) bool {
	root := rootIdent(rs.X)
	if root == nil {
		return true
	}
	obj := objectOf(p.Info, root)
	if obj == nil {
		return true
	}
	found := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if b, ok := objectOf(p.Info, id).(*types.Builtin); ok && b.Name() == "delete" {
					if len(x.Args) > 0 && mentionsObject(p.Info, x.Args[0], obj) {
						found = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok && mentionsObject(p.Info, ix.X, obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// pureRef reports whether e is an identifier or a selector chain of
// identifiers — safe to evaluate more than once.
func pureRef(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return true
		case *ast.SelectorExpr:
			e = x.X
		default:
			return false
		}
	}
}

// freshName returns base, or base2/base3/…, whichever is not already used as
// an identifier in funcBody or as a package-scope name.
func freshName(base string, p *Package, funcBody *ast.BlockStmt) string {
	used := map[string]bool{}
	if funcBody != nil {
		ast.Inspect(funcBody, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				used[id.Name] = true
			}
			return true
		})
	}
	name := base
	for i := 2; used[name] || p.Types.Scope().Lookup(name) != nil; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	return name
}

// importsPackage reports whether file already imports path.
func importsPackage(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if imp.Path.Value == strconv.Quote(path) {
			return true
		}
	}
	return false
}

// importEdit builds an edit adding an import of path to file, or ok=false
// when one already exists (no edit needed — the caller treats present and
// added the same) or the file has no import declaration to extend.
func importEdit(p *Package, file *ast.File, path string) (TextEdit, bool) {
	if importsPackage(file, path) {
		return TextEdit{}, false
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			return p.edit(gd.Lparen+1, gd.Lparen+1, "\n\t"+strconv.Quote(path)), true
		}
		// Single-import form: turn `import "x"` into a grouped block.
		if len(gd.Specs) == 1 {
			spec := gd.Specs[0].(*ast.ImportSpec)
			return p.edit(spec.Pos(), spec.End(),
				"(\n\t"+strconv.Quote(path)+"\n\t"+specText(spec)+"\n)"), true
		}
	}
	// No import declaration at all: start one after the package clause.
	if file.Name != nil {
		return p.edit(file.Name.End(), file.Name.End(), "\n\nimport "+strconv.Quote(path)), true
	}
	return TextEdit{}, false
}

func specText(spec *ast.ImportSpec) string {
	txt := spec.Path.Value
	if spec.Name != nil {
		txt = spec.Name.Name + " " + txt
	}
	return txt
}
