package lint

import (
	"go/ast"
	"go/types"
)

// LockCopy flags values of types that transitively contain a sync primitive
// (sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond — and
// therefore obs.Collector, which embeds a Mutex) being copied: passed as a
// by-value parameter, assigned from an existing value, returned by value, or
// bound as a by-value range element. A copied lock guards nothing — two
// goroutines each lock their own copy and race on the shared state behind
// it — which is exactly the failure mode a multi-tenant job engine with
// per-job Collectors cannot afford.
//
// Constructing a fresh value (var c Collector, T{}, composite literals) is
// fine: there is no prior lock state to fork. go vet's copylocks covers part
// of this; the rule here also understands obs.Collector-style wrappers and
// reports in the suite's own finding format so -json/-sarif carry it.
func LockCopy() *Analyzer {
	return &Analyzer{
		Name: "lockcopy",
		Doc:  "value copy of a type containing sync.Mutex/WaitGroup/Once/Cond (incl. obs.Collector)",
		Run:  runLockCopy,
	}
}

func runLockCopy(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				out = append(out, lockParams(p, x.Type)...)
				if x.Recv != nil {
					for _, f := range x.Recv.List {
						if t := p.Info.TypeOf(f.Type); containsLock(t) {
							out = append(out, p.finding("lockcopy", f.Type.Pos(),
								"method receiver copies %s which contains a sync primitive; use a pointer receiver", types.TypeString(t, relativeTo(p))))
						}
					}
				}
			case *ast.FuncLit:
				out = append(out, lockParams(p, x.Type)...)
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if i >= len(x.Lhs) || len(x.Rhs) != len(x.Lhs) {
						break
					}
					if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // discard, no value is materialized
					}
					if isLockValueCopy(p, rhs) {
						out = append(out, p.finding("lockcopy", x.Pos(),
							"assignment copies %s which contains a sync primitive; copy a pointer instead", types.TypeString(p.Info.TypeOf(rhs), relativeTo(p))))
					}
				}
			case *ast.ValueSpec:
				for _, v := range x.Values {
					if isLockValueCopy(p, v) {
						out = append(out, p.finding("lockcopy", x.Pos(),
							"declaration copies %s which contains a sync primitive; copy a pointer instead", types.TypeString(p.Info.TypeOf(v), relativeTo(p))))
					}
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					if t := p.Info.TypeOf(x.Value); containsLock(t) {
						out = append(out, p.finding("lockcopy", x.Value.Pos(),
							"range binds element copies of %s which contains a sync primitive; range over indices or pointers", types.TypeString(t, relativeTo(p))))
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if isLockValueCopy(p, r) {
						out = append(out, p.finding("lockcopy", r.Pos(),
							"return copies %s which contains a sync primitive; return a pointer", types.TypeString(p.Info.TypeOf(r), relativeTo(p))))
					}
				}
			case *ast.CallExpr:
				out = append(out, lockArgs(p, x)...)
			}
			return true
		})
	}
	return out
}

// lockParams flags by-value parameters (and results) of lock-containing type
// in a function signature.
func lockParams(p *Package, ftype *ast.FuncType) []Finding {
	var out []Finding
	if ftype == nil || ftype.Params == nil {
		return out
	}
	for _, f := range ftype.Params.List {
		t := p.Info.TypeOf(f.Type)
		if containsLock(t) {
			out = append(out, p.finding("lockcopy", f.Type.Pos(),
				"parameter passes %s by value which contains a sync primitive; take a pointer", types.TypeString(t, relativeTo(p))))
		}
	}
	return out
}

// lockArgs flags call arguments that copy an existing lock-containing value.
// (The callee-side parameter finding already covers module-internal callees;
// the argument check additionally catches calls into other packages.)
func lockArgs(p *Package, call *ast.CallExpr) []Finding {
	var out []Finding
	for _, arg := range call.Args {
		if isLockValueCopy(p, arg) {
			out = append(out, p.finding("lockcopy", arg.Pos(),
				"argument copies %s which contains a sync primitive; pass a pointer", types.TypeString(p.Info.TypeOf(arg), relativeTo(p))))
		}
	}
	return out
}

// isLockValueCopy reports whether e evaluates to an existing (addressable or
// dereferenced) value of a lock-containing type — i.e. the copy forks live
// lock state. Fresh composite literals and conversions of literals are not
// copies of prior state.
func isLockValueCopy(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if !containsLock(t) {
		return false
	}
	switch x := e.(type) {
	case *ast.CompositeLit:
		return false // fresh value
	case *ast.CallExpr:
		return false // function result: flagged at the returning function
	case *ast.UnaryExpr:
		return false // &x is a pointer, not a copy
	case *ast.ParenExpr:
		return isLockValueCopy(p, x.X)
	case *ast.StarExpr:
		return true // *ptr dereference copies the pointee
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// containsLock reports whether t (not a pointer) transitively holds one of
// the sync primitives whose zero-value identity must not be forked.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, map[types.Type]bool{})
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if isSyncPrimitive(named) {
			return true
		}
		return containsLockSeen(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

func isSyncPrimitive(named *types.Named) bool {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
		return true
	}
	return false
}

// relativeTo qualifies type names relative to the analyzed package, so
// findings read sync.Mutex / obs.Collector rather than full import paths.
func relativeTo(p *Package) types.Qualifier {
	return func(other *types.Package) string {
		if other == p.Types {
			return ""
		}
		return other.Name()
	}
}
