package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetSource flags wall-clock or global-entropy values flowing into a
// clustering Result. globalrand catches the call sites (rand.Intn, a
// time-seeded rand.New); this rule generalizes it from call sites to
// dataflow: time.Now()/time.Since laundered through locals and arithmetic
// still taints whatever it reaches, and a tainted value stored into a field
// of a *Result struct (any module type named Result/…Result) makes two
// same-seed runs produce different artifacts — the reproducibility contract
// the paper's cross-view comparisons rest on (see DESIGN.md).
//
// Timing that flows into obs recorders, spans, or logs is fine — the sink
// is specifically the clustering result surface.
func DetSource() *Analyzer {
	return &Analyzer{
		Name: "detsource",
		Doc:  "time.Now/global entropy flowing (via dataflow) into a clustering Result",
		Run:  runDetSource,
	}
}

func runDetSource(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, detSourceInFunc(p, fn)...)
		}
	}
	return out
}

func detSourceInFunc(p *Package, fn *ast.FuncDecl) []Finding {
	// Quick syntactic gate before paying for a FlowPass: any entropy call?
	hasSeed := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isEntropySeed(p, e) {
			hasSeed = true
		}
		return !hasSeed
	})
	if !hasSeed {
		return nil
	}

	fp := NewFlowPass(p, fn)
	seed := func(e ast.Expr) bool { return isEntropySeed(p, e) }
	taint := fp.TaintedBy(seed)

	var out []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				rt, fieldOK := resultBaseType(p, sel)
				if !fieldOK {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(x.Rhs) == len(x.Lhs):
					rhs = x.Rhs[i]
				case len(x.Rhs) == 1:
					rhs = x.Rhs[0]
				}
				if rhs != nil && taint.Tainted(fp, seed, rhs) {
					out = append(out, p.finding("detsource", x.Pos(),
						"wall-clock/global entropy flows into %s.%s: same-seed replays diverge; derive the value from the config Seed or record it via obs instead", rt, sel.Sel.Name))
				}
			}
		case *ast.CompositeLit:
			t := p.Info.TypeOf(x)
			name, ok := resultTypeName(t)
			if !ok {
				return true
			}
			for _, elt := range x.Elts {
				val := elt
				field := ""
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
					if id, ok := kv.Key.(*ast.Ident); ok {
						field = id.Name
					}
				}
				if taint.Tainted(fp, seed, val) {
					where := name
					if field != "" {
						where = name + "." + field
					}
					out = append(out, p.finding("detsource", val.Pos(),
						"wall-clock/global entropy flows into %s: same-seed replays diverge; derive the value from the config Seed or record it via obs instead", where))
				}
			}
		}
		return true
	})
	return out
}

// isEntropySeed matches the expressions whose value differs between two
// identical runs: time.Now()/Since/Until and global math/rand draws.
func isEntropySeed(p *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if name, ok := selectorCall(p.Info, call, "time"); ok {
		switch name {
		case "Now", "Since", "Until":
			return true
		}
	}
	if name, ok := selectorCallAnyPath(p, call, mathRandPath, mathRandV2Path); ok {
		return !randConstructors[name]
	}
	return false
}

// resultBaseType resolves sel's base expression to a Result-named struct
// type, returning its display name.
func resultBaseType(p *Package, sel *ast.SelectorExpr) (string, bool) {
	t := p.Info.TypeOf(sel.X)
	return resultTypeName(t)
}

// resultTypeName reports whether t (or its pointee) is a named struct whose
// name is Result or ends in Result — the shape every clustering algorithm in
// this module returns.
func resultTypeName(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil {
		return "", false
	}
	name := obj.Name()
	if name != "Result" && !strings.HasSuffix(name, "Result") {
		return "", false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return "", false
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + name, true
	}
	return name, true
}
