// Fixture for the lockcopy analyzer: values of lock-containing types being
// copied (true positives) next to the pointer-shaped patterns that are fine
// (true negatives).
package fixture

import (
	"sync"

	"multiclust/internal/obs"
)

// jobState embeds a mutex indirectly: copying it forks the lock.
type jobState struct {
	mu   sync.Mutex
	runs int
}

// nested contains a lock two levels down.
type nested struct {
	inner jobState
}

func byValueParam(s jobState) int { // want `parameter passes jobState by value`
	return s.runs
}

func byValueCollector(c obs.Collector) { // want `parameter passes obs.Collector by value`
	_ = c
}

func assignCopy() {
	var a jobState
	b := a // want `assignment copies jobState`
	_ = b
}

func declCopy() {
	var a nested
	var b = a // want `declaration copies nested`
	_ = b
}

func derefCopy(p *jobState) {
	v := *p // want `assignment copies jobState`
	_ = v
}

func rangeCopy(states []jobState) int {
	total := 0
	for _, s := range states { // want `range binds element copies of jobState`
		total += s.runs
	}
	return total
}

func returnCopy(p *jobState) jobState {
	return *p // want `return copies jobState`
}

func argCopy(states []jobState) int {
	return byValueParam(states[0]) // want `argument copies jobState`
}

func (s jobState) valueReceiver() int { // want `method receiver copies jobState`
	return s.runs
}

type counter struct{ n int }

// methodOnValue is fine: counter holds no lock.
func (c counter) methodOnValue() int { return c.n }

// Pointer-shaped patterns: all clean.
func pointerParam(s *jobState) int { return s.runs }

func freshValue() *jobState {
	var s jobState // fresh construction, no prior lock state
	return &s
}

func freshLiteral() *nested {
	n := nested{}
	return &n
}

func pointerRange(states []*jobState) int {
	total := 0
	for _, s := range states {
		total += s.runs
	}
	return total
}

func indexRange(states []jobState) int {
	total := 0
	for i := range states {
		total += states[i].runs
	}
	return total
}

func addressOf() *jobState {
	s := jobState{}
	p := &s
	return p
}

func collectorPointer(c *obs.Collector) { _ = c }
