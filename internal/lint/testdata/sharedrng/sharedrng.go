// Fixture for the sharedrng analyzer: one *rand.Rand shared across
// parallel worker closures.
package fixture

import (
	"math/rand"

	"multiclust/internal/parallel"
)

func shared(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	parallel.For(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = rng.Float64() // want `\*rand.Rand "rng" is shared across parallel.For workers`
		}
	})
	return out
}

func sharedInMap(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	return parallel.Map(n, 0, func(i int) float64 {
		return rng.Float64() // want `\*rand.Rand "rng" is shared across parallel.Map workers`
	})
}

// The approved pattern (k-means restart fan-out): derive an independent
// generator per task from the config seed.
func perTask(n int, seed int64) []float64 {
	out := make([]float64, n)
	parallel.Each(n, 0, func(i int) {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		out[i] = rng.Float64()
	})
	return out
}

// Serial use of a generator is fine — no workers involved.
func serial(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}
