// Fixture for the sharedrng analyzer: one *rand.Rand shared across
// parallel worker closures.
package fixture

import (
	"math/rand"

	"multiclust/internal/parallel"
)

func shared(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	parallel.For(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = rng.Float64() // want `\*rand.Rand "rng" is shared across parallel.For workers`
		}
	})
	return out
}

func sharedInMap(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	return parallel.Map(n, 0, func(i int) float64 {
		return rng.Float64() // want `\*rand.Rand "rng" is shared across parallel.Map workers`
	})
}

// The approved pattern (k-means restart fan-out): derive an independent
// generator per task from the config seed.
func perTask(n int, seed int64) []float64 {
	out := make([]float64, n)
	parallel.Each(n, 0, func(i int) {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		out[i] = rng.Float64()
	})
	return out
}

// Serial use of a generator is fine — no workers involved.
func serial(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// sampler hides its generator behind a struct field — the blind spot the
// field/method extension covers: no *rand.Rand variable is ever captured,
// but every worker still draws from the one generator.
type sampler struct {
	rng *rand.Rand
}

func (s *sampler) draw() float64 { return s.rng.Float64() }

func sharedField(n int, seed int64) []float64 {
	s := &sampler{rng: rand.New(rand.NewSource(seed))}
	out := make([]float64, n)
	parallel.Each(n, 0, func(i int) {
		out[i] = s.rng.Float64() // want `\*rand.Rand field "s.rng" is shared across parallel.Each workers`
	})
	return out
}

func sharedMethod(n int, seed int64) []float64 {
	s := &sampler{rng: rand.New(rand.NewSource(seed))}
	out := make([]float64, n)
	parallel.Each(n, 0, func(i int) {
		out[i] = s.draw() // want `method draw draws from a \*rand.Rand field of captured "s" inside parallel.Each workers`
	})
	return out
}

// counter has no generator: its methods are safe to call from workers.
type counter struct{ hits []int }

func (c *counter) bump(i int) { c.hits[i]++ }

func methodWithoutRand(n int) {
	c := &counter{hits: make([]int, n)}
	parallel.Each(n, 0, func(i int) {
		c.bump(i)
	})
}

// A sampler used serially is fine — the field rule only binds workers.
func fieldSerial(n int, seed int64) []float64 {
	s := &sampler{rng: rand.New(rand.NewSource(seed))}
	out := make([]float64, n)
	for i := range out {
		out[i] = s.draw()
	}
	return out
}
