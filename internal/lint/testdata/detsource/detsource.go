// Fixture for the detsource analyzer: wall-clock and global-entropy values
// flowing — possibly through intermediate locals — into clustering Result
// fields. Timing that feeds telemetry, and values derived from the config
// seed, are the true negatives.
package fixture

import (
	"math/rand"
	"time"
)

// Result mirrors the clustering result shape of the module's algorithms.
type Result struct {
	Labels     []int
	SSE        float64
	Seed       int64
	Iterations int
}

// FitResult exercises the …Result suffix match.
type FitResult struct {
	Score float64
}

type Config struct{ Seed int64 }

// Direct flow: the entropy call is the assigned expression itself.
func directClock(labels []int) *Result {
	res := &Result{Labels: labels}
	res.Seed = time.Now().UnixNano() // want `wall-clock/global entropy flows into fixture.Result.Seed`
	return res
}

// Laundered flow: the clock value passes through two locals and arithmetic
// before reaching the Result — the blind spot globalrand cannot see.
func launderedClock(labels []int) *Result {
	t0 := time.Now()
	stamp := t0.UnixNano()
	shifted := stamp / 1000
	res := &Result{Labels: labels}
	res.Seed = shifted // want `wall-clock/global entropy flows into fixture.Result.Seed`
	return res
}

// Composite-literal sink: tainted value used in the literal itself.
func literalClock(labels []int) Result {
	elapsed := time.Since(time.Now())
	return Result{
		Labels: labels,
		SSE:    elapsed.Seconds(), // want `wall-clock/global entropy flows into fixture.Result.SSE`
	}
}

// Global rand draw reaching a suffixed Result type.
func globalDraw() FitResult {
	x := rand.Float64()
	y := x * 2
	return FitResult{
		Score: y, // want `wall-clock/global entropy flows into fixture.FitResult.Score`
	}
}

// True negative: seed comes from the config, never from the environment.
func fromConfigSeed(cfg Config, labels []int) *Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{Labels: labels}
	res.Seed = cfg.Seed
	res.SSE = rng.Float64()
	return res
}

// True negative: wall-clock timing that feeds telemetry, not the Result.
func timedRun(labels []int) (*Result, time.Duration) {
	start := time.Now()
	res := &Result{Labels: labels, Seed: 42}
	elapsed := time.Since(start)
	return res, elapsed
}

// True negative: tainted value stored in a non-Result struct.
type report struct{ tookNS int64 }

func intoReport() report {
	return report{tookNS: time.Now().UnixNano()}
}
