// Streaming-snapshot shapes for the detsource analyzer: a snapshot is a
// Result the replay harness compares byte for byte, so wall-clock or
// global entropy flowing into one breaks chunked-replay determinism even
// when every seed is pinned.
package fixture

import (
	"math/rand"
	"time"
)

// SnapshotResult mirrors the streaming layer's snapshot surface.
type SnapshotResult struct {
	Labels   []int
	RowsSeen int64
	SSE      float64
	Stamp    int64
}

type streamCfg struct{ Seed int64 }

// Stamping the snapshot with the wall clock: two replays of the same
// chunk sequence now differ — the streaming true positive.
func stampedSnapshot(labels []int, rows int64) *SnapshotResult {
	s := &SnapshotResult{Labels: labels, RowsSeen: rows}
	s.Stamp = time.Now().UnixNano() // want `wall-clock/global entropy flows into fixture.SnapshotResult.Stamp`
	return s
}

// Laundered variant: per-chunk elapsed time folded into the snapshot's
// quality number through locals and arithmetic.
func driftedSSE(labels []int, sse float64) *SnapshotResult {
	start := time.Now()
	elapsed := time.Since(start)
	jitter := elapsed.Seconds() * 1e-9
	s := &SnapshotResult{Labels: labels}
	s.SSE = sse + jitter // want `wall-clock/global entropy flows into fixture.SnapshotResult.SSE`
	return s
}

// Global draw used to break SSE ties between snapshots.
func tieBrokenSnapshot(labels []int) SnapshotResult {
	tie := rand.Float64()
	return SnapshotResult{
		Labels: labels,
		SSE:    tie, // want `wall-clock/global entropy flows into fixture.SnapshotResult.SSE`
	}
}

// True negative: everything in the snapshot derives from the config seed
// and the chunk sequence — the streaming determinism contract.
func seededSnapshot(cfg streamCfg, labels []int, rows int64) *SnapshotResult {
	rng := rand.New(rand.NewSource(cfg.Seed + rows))
	return &SnapshotResult{Labels: labels, RowsSeen: rows, SSE: rng.Float64()}
}

// True negative: per-chunk timing goes to telemetry beside the snapshot,
// never into it.
func timedChunk(labels []int, rows int64) (*SnapshotResult, int64) {
	start := time.Now()
	s := &SnapshotResult{Labels: labels, RowsSeen: rows}
	return s, time.Since(start).Nanoseconds()
}
