// Fixture for the maporder analyzer: order-sensitive operations inside
// for-range over a map. Lines carrying a `// want` comment are true
// positives; everything else must stay clean (true negatives).
package fixture

import "sort"

func sumInMapOrder(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into "sum"`
	}
	return sum
}

// The blessed sorted-keys idiom (grid.go, coala.go): collect, sort, iterate.
func sumSorted(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func appendValues(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append to "out"`
	}
	return out
}

// Sorting the collected slice after the loop restores determinism.
func appendThenSort(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func argmaxPayload(m map[string]float64) string {
	best, bestKey := -1.0, ""
	for k, v := range m {
		if v > best {
			best = v
			bestKey = k // want `argmax/argmin update of "bestKey"`
		}
	}
	return bestKey
}

// A pure running maximum is order-independent: the extremum value does not
// depend on which key delivers it first.
func pureMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Integer accumulation commutes exactly; only floats round.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Indexing the accumulator by the range key touches one distinct slot per
// iteration, so visit order cannot matter.
func perSlot(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] += v
	}
}

// Suppression: a directive on the line above silences the finding.
func suppressed(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:ignore maporder fixture demonstrates the ignore directive
		sum += v
	}
	return sum
}
