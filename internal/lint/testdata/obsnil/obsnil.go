// Fixture for the obsnil analyzer: direct obs.Recorder method calls must
// go through the nil-guarded package helpers.
package fixture

import (
	"os"

	"multiclust/internal/obs"
)

// Direct interface calls are flagged even under a nil guard: the guard is
// easy to forget at the next call site, and the helper costs nothing.
func direct(rec obs.Recorder, n int) {
	rec.Count("fixture.items", int64(n)) // want `direct Count call on an obs.Recorder`
	rec.Gauge("fixture.load", 0.5)       // want `direct Gauge call on an obs.Recorder`
	rec.Histogram("fixture.wait", 0.001) // want `direct Histogram call on an obs.Recorder`
	if rec != nil {
		rec.Observe("fixture.err", 1, 0.25) // want `direct Observe call on an obs.Recorder`
		done := rec.StartSpan("fixture.op", obs.NewSpanID(), 0) // want `direct StartSpan call on an obs.Recorder`
		defer done()
	}
}

// The nil-guarded helpers are the approved route.
func guarded(rec obs.Recorder, n int) {
	obs.Count(rec, "fixture.items", int64(n))
	obs.Gauge(rec, "fixture.load", 0.5)
	obs.Observe(rec, "fixture.err", 1, 0.25)
	obs.Histogram(rec, "fixture.wait", 0.001)
	defer obs.Span(rec, "fixture.op")()
}

// Resolving through context or the process default still ends in helpers.
func resolved(n int) {
	rec := obs.Default()
	obs.Count(rec, "fixture.resolved", int64(n))
}

// Concrete sink types are provably non-nil at the call site; calling them
// directly is how the sinks are driven.
func sinks() error {
	c := obs.NewCollector()
	c.Count("fixture.items", 3)
	c.Reset()
	tw := obs.NewTraceWriter(os.Stdout)
	tw.Gauge("fixture.load", 0.5)
	return tw.Err()
}

// An unrelated interface that happens to share a method name is not the
// Recorder; flagging it would outlaw ordinary polymorphism.
type counter interface {
	Count(name string, delta int64)
}

func unrelated(c counter) {
	c.Count("fixture.other", 1)
}
