// Fixture for the ctxflow analyzer: an in-scope ctx dropped at a call whose
// callee has a ...Context-capable sibling — same package, another module
// package, and a method set (true positives) — next to calls that forward
// the context or have no context-capable sibling (true negatives).
package fixture

import (
	"context"

	"multiclust/internal/kmeans"
)

func process(data []float64) float64 {
	total := 0.0
	for _, v := range data {
		total += v
	}
	return total
}

func processContext(ctx context.Context, data []float64) (float64, error) {
	total := 0.0
	for i, v := range data {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		total += v
	}
	return total, nil
}

type engine struct{ steps int }

func (e *engine) Step() { e.steps++ }

func (e *engine) StepContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.steps++
	return nil
}

// TP: same-package sibling ignored.
func localDrop(ctx context.Context, data []float64) float64 {
	_ = ctx.Err()
	return process(data) // want `call to process drops ctx: processContext accepts a context`
}

// TP: cross-package sibling ignored — the interprocedural case.
func moduleDrop(ctx context.Context, points [][]float64) (*kmeans.Result, error) {
	_ = ctx.Err()
	return kmeans.Run(points, kmeans.Config{K: 2, Seed: 1}) // want `call to Run drops ctx: RunContext accepts a context`
}

// TP: method sibling ignored.
func methodDrop(ctx context.Context, e *engine) {
	_ = ctx.Err()
	e.Step() // want `call to Step drops ctx: StepContext accepts a context`
}

// TP: the drop also counts inside a closure — ctx is still in scope there.
func closureDrop(ctx context.Context, data []float64) func() float64 {
	_ = ctx.Err()
	return func() float64 {
		return process(data) // want `call to process drops ctx: processContext accepts a context`
	}
}

// True negative: the context is forwarded.
func forwards(ctx context.Context, data []float64) (float64, error) {
	return processContext(ctx, data)
}

// True negative: forwarded to the cross-package sibling.
func forwardsModule(ctx context.Context, points [][]float64) (*kmeans.Result, error) {
	return kmeans.RunContext(ctx, points, kmeans.Config{K: 2, Seed: 1})
}

// True negative: callee has no ...Context sibling.
func noSibling(ctx context.Context, data []float64) int {
	_ = ctx.Err()
	return len(data)
}

// True negative: no ctx in scope — nothing to forward.
func noCtx(data []float64) float64 {
	return process(data)
}

// True negative: an explicitly discarded context is an opt-out.
func optedOut(_ context.Context, data []float64) float64 {
	return process(data)
}
