// Fixture for the floatkey analyzer: float map keys and exact float
// equality between computed values.
package fixture

import (
	"math"
	"sort"
)

type histogram map[float64]int // want `float map key`

func buildIndex(xs []float64) map[float64]int { // want `float map key`
	idx := make(map[float64]int, len(xs)) // want `float map key`
	for i, x := range xs {
		idx[x] = i
	}
	return idx
}

func exactEqual(a, b float64) bool {
	return a == b // want `exact float == comparison`
}

func exactNotEqual(a, b float64) bool {
	return a != b // want `exact float != comparison`
}

// Epsilon comparison is the approved pattern.
func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// Comparing against a constant is an exact guard on purpose.
func zeroGuard(x float64) bool {
	return x != 0
}

// Exact comparison as a deterministic tie-break inside a sort comparator is
// the blessed idiom (ris.go, enclus.go, statpc.go).
func tieBreak(qs []float64, ids []int) {
	sort.Slice(ids, func(i, j int) bool {
		if qs[ids[i]] != qs[ids[j]] {
			return qs[ids[i]] > qs[ids[j]]
		}
		return ids[i] < ids[j]
	})
}

// Integer equality is exact by nature.
func intEqual(a, b int) bool {
	return a == b
}
