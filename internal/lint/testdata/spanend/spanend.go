// Fixture for the spanend analyzer: every span-open must have its end
// function deferred, called on every return path, or handed off.
package fixture

import (
	"context"
	"errors"

	"multiclust/internal/obs"
)

// ---- clean idioms the rule must accept ----

func deferredImmediately(rec obs.Recorder) {
	defer obs.Span(rec, "fixture.op")()
}

func deferredVariable(ctx context.Context, rec obs.Recorder) {
	_, end := obs.SpanCtx(ctx, rec, "fixture.op")
	defer end()
}

func immediateInvoke(rec obs.Recorder) {
	obs.Span(rec, "fixture.op")() // opens and closes on the spot
}

func calledOnEveryPath(rec obs.Recorder, fail bool) error {
	end := obs.Span(rec, "fixture.op")
	if fail {
		end()
		return errors.New("fixture")
	}
	end()
	return nil
}

func calledBeforeFallOff(rec obs.Recorder) {
	end := obs.Span(rec, "fixture.op")
	end()
}

// Escapes are assumed managed by the receiver.
func escapeAsReturn(rec obs.Recorder) func() {
	return obs.Span(rec, "fixture.op")
}

func escapeAsArg(rec obs.Recorder) {
	runThenEnd(obs.Span(rec, "fixture.op"))
}

func runThenEnd(end func()) { end() }

func escapeViaClosure(rec obs.Recorder) func() {
	end := obs.Span(rec, "fixture.op")
	return func() { end() }
}

func sinkDeferred(c *obs.Collector) {
	defer c.StartSpan("fixture.op", obs.NewSpanID(), 0)()
}

// ---- leaks the rule must flag ----

func statementDiscard(rec obs.Recorder) {
	obs.Span(rec, "fixture.op") // want `result of obs.Span is discarded`
}

func blankAssign(ctx context.Context, rec obs.Recorder) context.Context {
	lctx, _ := obs.SpanCtx(ctx, rec, "fixture.op") // want `end function of obs.SpanCtx assigned to the blank identifier`
	return lctx
}

func deferOpenNotEnd(rec obs.Recorder) {
	defer obs.Span(rec, "fixture.op") // want `defer obs.Span\(\.\.\.\) discards the span end function`
}

func neverCalled(rec obs.Recorder) {
	end := obs.Span(rec, "fixture.op") // want `end function "end" of obs.Span is never deferred or called`
	_ = end                            // blank re-assignment is not a close
}

func missingReturnPath(rec obs.Recorder, fail bool) error {
	end := obs.Span(rec, "fixture.op") // want `not called on every return path`
	if fail {
		return errors.New("fixture") // leaks the span
	}
	end()
	return nil
}

func conditionalFallOff(rec obs.Recorder, fail bool) {
	end := obs.Span(rec, "fixture.op") // want `not called on every return path`
	if !fail {
		end()
	} // falling off the end with fail=true leaks the span
}

func methodDiscard(rec obs.Recorder) {
	rec.StartSpan("fixture.op", obs.NewSpanID(), 0) // want `result of Recorder.StartSpan is discarded`
}
