// Fixture for the nakedgo analyzer: go statements outside internal/parallel.
package fixture

import (
	"sync"

	"multiclust/internal/parallel"
)

func naked(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `naked go statement`
		defer wg.Done()
	}()
	wg.Wait()
}

// Fan-out through internal/parallel is the approved route.
func routed(n int) []int {
	return parallel.Map(n, 0, func(i int) int { return i * i })
}

// A func literal without a go statement is not concurrency.
func closureOnly(f func()) {
	g := func() { f() }
	g()
}
