// Fixture for the rngescape analyzer: *rand.Rand values crossing a
// parallel.For/Each/Map boundary through struct fields, channels, and worker
// return values (true positives), next to per-task generators and serial rng
// plumbing that never meets a worker (true negatives).
package fixture

import (
	"math/rand"

	"multiclust/internal/parallel"
)

type workerState struct {
	rng *rand.Rand
	sum float64
}

// TP: rng parked in a struct field that the workers then touch.
func fieldEscape(seed int64, xs []float64) float64 {
	st := &workerState{}
	st.rng = rand.New(rand.NewSource(seed)) // want `\*rand\.Rand stored into field st.rng of a struct the parallel.For workers touch`
	parallel.For(len(xs), 2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.sum += st.rng.Float64()
		}
	})
	return st.sum
}

// TP: worker writes its generator into shared state.
func fieldEscapeFromWorker(seed int64, n int) *workerState {
	st := &workerState{}
	parallel.Each(n, 2, func(i int) {
		st.rng = rand.New(rand.NewSource(seed + int64(i))) // want `\*rand\.Rand stored into field st.rng from inside a parallel.Each worker`
	})
	return st
}

// TP: generator handed to the workers over a channel.
func channelEscape(seed int64, n int) {
	ch := make(chan *rand.Rand, 1)
	ch <- rand.New(rand.NewSource(seed)) // want `\*rand\.Rand sent on a channel the parallel.Each workers read`
	parallel.Each(n, 2, func(i int) {
		r := <-ch
		_ = r.Int63()
	})
}

// TP: worker publishes its generator on a channel.
func channelEscapeFromWorker(seed int64, n int) {
	ch := make(chan *rand.Rand, n)
	parallel.Each(n, 2, func(i int) {
		r := rand.New(rand.NewSource(seed + int64(i)))
		ch <- r // want `\*rand\.Rand sent on a channel from inside a parallel.Each worker`
	})
	close(ch)
}

// TP: parallel.Map collecting the generators themselves.
func returnEscape(seed int64, n int) []*rand.Rand {
	return parallel.Map(n, 2, func(i int) *rand.Rand {
		return rand.New(rand.NewSource(seed + int64(i))) // want `parallel.Map worker returns its \*rand\.Rand`
	})
}

// True negative: the approved per-task pattern — generator derived, used,
// and dropped inside the worker.
func perTask(seed int64, n int) []float64 {
	return parallel.Map(n, 2, func(i int) float64 {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		return rng.Float64()
	})
}

// True negative: a struct field rng in a function with no parallel call.
func serialFieldStore(seed int64) *workerState {
	st := &workerState{}
	st.rng = rand.New(rand.NewSource(seed))
	return st
}

// True negative: channel of generators plumbed entirely outside any worker.
func serialChannel(seed int64) *rand.Rand {
	ch := make(chan *rand.Rand, 1)
	ch <- rand.New(rand.NewSource(seed))
	return <-ch
}

// True negative: parallel work nearby, but the rng never escapes — only the
// drawn values reach the shared slice.
func drawnValuesOnly(seed int64, n int) []float64 {
	out := make([]float64, n)
	parallel.Each(n, 2, func(i int) {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		out[i] = rng.Float64()
	})
	return out
}
