// Streaming-loop shapes for the ctxpoll analyzer: chunked-replay loops
// mirror internal/stream — a learner folds in one chunk per iteration, so
// a replay that never consults its context cannot be interrupted at a
// chunk boundary.
package fixture

import "context"

type learner struct{ rows int }

func (l *learner) push(rows [][]float64) { l.rows += len(rows) }

func (l *learner) pushContext(ctx context.Context, rows [][]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.rows += len(rows)
	return nil
}

// A chunk-replay loop that ignores its context is exactly the streaming
// bug: once the replay starts, nothing can stop it between chunks.
func replayIgnoresContext(ctx context.Context, chunks [][][]float64) int {
	l := &learner{}
	for _, chunk := range chunks { // want `never consults it`
		l.push(chunk)
	}
	return l.rows
}

// Polling at the chunk boundary is the approved replay shape (the
// stream-layer boundary idiom): a cancelled context rejects the next
// chunk and the learner keeps its last consistent state.
func replayPollsBoundary(ctx context.Context, chunks [][][]float64) (int, error) {
	l := &learner{}
	for _, chunk := range chunks {
		if err := ctx.Err(); err != nil {
			return l.rows, err
		}
		l.push(chunk)
	}
	return l.rows, nil
}

// Forwarding ctx into the per-chunk push also consults it: the callee
// owns the boundary poll.
func replayForwardsContext(ctx context.Context, chunks [][][]float64) (int, error) {
	l := &learner{}
	for _, chunk := range chunks {
		if err := l.pushContext(ctx, chunk); err != nil {
			return l.rows, err
		}
	}
	return l.rows, nil
}

// Selecting on ctx.Done while waiting for the next chunk consults the
// context too — the appender-loop shape of the job engine.
func appendLoopSelects(ctx context.Context, feed <-chan [][]float64) int {
	l := &learner{}
	for {
		select {
		case chunk, ok := <-feed:
			if !ok {
				return l.rows
			}
			l.push(chunk)
		case <-ctx.Done():
			return l.rows
		}
	}
}
