// Fixture for the ctxpoll analyzer: looping functions that take a
// context.Context must consult it.
package fixture

import "context"

// A loop that never looks at ctx is exactly the bug.
func ignoresContext(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `never consults it`
		total += i
	}
	return total
}

// Range loops count too.
func ignoresContextRange(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs { // want `never consults it`
		total += x
	}
	return total
}

// Polling ctx.Err() at the iteration boundary is the approved shape.
func pollsContext(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += i
	}
	return total, nil
}

// Forwarding ctx to a callee inside the loop also consults it.
func forwardsContext(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += step(ctx, i)
	}
	return total
}

func step(ctx context.Context, i int) int {
	_ = ctx.Err()
	return i
}

// No loop: nothing to poll, not flagged.
func noLoop(ctx context.Context, a, b int) int {
	return a + b
}

// An underscore parameter is an explicit opt-out.
func optedOut(_ context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// Renaming the context is not consulting it — the alias blind spot.
func aliasOnly(ctx context.Context, n int) int {
	c := ctx
	_ = c
	total := 0
	for i := 0; i < n; i++ { // want `never consults it`
		total += i
	}
	return total
}

// An alias chain that ends in a real poll is fine.
func aliasConsulted(ctx context.Context, n int) (int, error) {
	c := ctx
	inner := c
	total := 0
	for i := 0; i < n; i++ {
		if err := inner.Err(); err != nil {
			return total, err
		}
		total += i
	}
	return total, nil
}

// poller carries its context in a receiver field — the method blind spot.
type poller struct {
	ctx  context.Context
	hits int
}

// A looping method that never reads p.ctx can't observe cancellation.
func (p *poller) spinUnchecked(n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `carries a context.Context in its receiver but never consults it`
		total += i
	}
	return total
}

// Reading the receiver's context each iteration is the approved shape.
func (p *poller) spinChecked(n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := p.ctx.Err(); err != nil {
			return total, err
		}
		total++
	}
	return total, nil
}

// Stashing the receiver's context under a local and ignoring it is still
// unobserved cancellation.
func (p *poller) spinAliased(n int) int {
	c := p.ctx
	_ = c
	total := 0
	for i := 0; i < n; i++ { // want `carries a context.Context in its receiver but never consults it`
		total += i
	}
	return total
}

// A non-looping method on the same type is not flagged.
func (p *poller) bump() { p.hits++ }
