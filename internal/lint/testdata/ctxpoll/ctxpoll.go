// Fixture for the ctxpoll analyzer: looping functions that take a
// context.Context must consult it.
package fixture

import "context"

// A loop that never looks at ctx is exactly the bug.
func ignoresContext(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `never consults it`
		total += i
	}
	return total
}

// Range loops count too.
func ignoresContextRange(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs { // want `never consults it`
		total += x
	}
	return total
}

// Polling ctx.Err() at the iteration boundary is the approved shape.
func pollsContext(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += i
	}
	return total, nil
}

// Forwarding ctx to a callee inside the loop also consults it.
func forwardsContext(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += step(ctx, i)
	}
	return total
}

func step(ctx context.Context, i int) int {
	_ = ctx.Err()
	return i
}

// No loop: nothing to poll, not flagged.
func noLoop(ctx context.Context, a, b int) int {
	return a + b
}

// An underscore parameter is an explicit opt-out.
func optedOut(_ context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
