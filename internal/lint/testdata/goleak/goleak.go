// Fixture for the goleak analyzer: goroutines whose join can be skipped by
// an early return (true positives) next to the joined, deferred, and
// detached-but-tracked shapes that are fine (true negatives).
package fixture

import "sync"

func work() error { return nil }

// Early return between spawn and Wait: the classic leak.
func earlyReturnSkipsWait(fail bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine can leak: a return path exits earlyReturnSkipsWait`
		defer wg.Done()
		_ = work()
	}()
	if fail {
		return work() // leaves without waiting
	}
	wg.Wait()
	return nil
}

// Channel variant: the receive is skippable.
func earlyReturnSkipsReceive(fail bool) error {
	done := make(chan struct{})
	go func() { // want `goroutine can leak: a return path exits earlyReturnSkipsReceive`
		_ = work()
		close(done)
	}()
	if fail {
		return work()
	}
	<-done
	return nil
}

// No join at all: nothing ever waits for the goroutine.
func fireAndForget() {
	go func() { // want `goroutine has no WaitGroup or channel to join on`
		_ = work()
	}()
}

// True negative: unconditional Wait on the only path.
func joinedStraightLine() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work()
	}()
	wg.Wait()
}

// True negative: deferred Wait runs on every return path.
func deferredWait(fail bool) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work()
	}()
	if fail {
		return work()
	}
	return nil
}

// True negative: both the early-return path and the fallthrough path join.
func joinOnEveryPath(fail bool) error {
	done := make(chan error, 1)
	go func() {
		done <- work()
	}()
	if fail {
		return <-done
	}
	err := <-done
	return err
}

// handle mirrors ops.Handle: the goroutine signals through a struct field,
// so its lifecycle is owned by the peer that holds the handle.
type handle struct {
	err chan error
}

// True negative: detached-but-tracked via an escaping struct-field channel.
func startDetached() *handle {
	h := &handle{err: make(chan error, 1)}
	go func() {
		h.err <- work()
	}()
	return h
}

// True negative: the channel itself is returned — join duty moves to the
// caller.
func startReturningChannel() chan error {
	done := make(chan error, 1)
	go func() {
		done <- work()
	}()
	return done
}

// True negative: spawn in a loop with the Wait after it (the parallel.For
// shape).
func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = work()
		}()
	}
	wg.Wait()
}
