// Streaming-loop shapes for the goleak analyzer: chunk appenders and
// snapshot fan-outs mirror the job engine's streaming paths, where a
// failed append must not strand the goroutine feeding the stream.
package fixture

import "sync"

func pushChunk(rows [][]float64) error { return nil }

// An appender goroutine whose join is skipped when admission fails: the
// streaming true positive — the feeder keeps running after the caller
// has given up on the stream.
func appendersLeakOnAdmitError(chunks [][][]float64, fail bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine can leak: a return path exits appendersLeakOnAdmitError`
		defer wg.Done()
		for _, c := range chunks {
			_ = pushChunk(c)
		}
	}()
	if fail {
		return pushChunk(nil) // stream refused; feeder never joined
	}
	wg.Wait()
	return nil
}

// Snapshot fan-out with no join at all: nothing ever waits for the
// per-learner snapshot goroutines.
func snapshotFireAndForget(n int) {
	for i := 0; i < n; i++ {
		go func() { // want `goroutine has no WaitGroup or channel to join on`
			_ = pushChunk(nil)
		}()
	}
}

// True negative: the replay worker is joined by a deferred Wait on every
// return path, including the early bail-out on a rejected chunk.
func replayWorkerDeferredJoin(chunks [][][]float64, fail bool) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, c := range chunks {
			_ = pushChunk(c)
		}
	}()
	if fail {
		return pushChunk(nil)
	}
	return nil
}

// True negative: the appender hands its completion channel to the caller
// — join duty moves with it (the engine's token-delivery shape).
func startAppender(chunks [][][]float64) chan error {
	done := make(chan error, 1)
	go func() {
		var err error
		for _, c := range chunks {
			if err = pushChunk(c); err != nil {
				break
			}
		}
		done <- err
	}()
	return done
}

// True negative: chunk-sharded fan-out with the Wait after the spawn loop
// (the parallel.For shape the stream learners use internally).
func shardChunks(chunks [][][]float64) {
	var wg sync.WaitGroup
	for _, c := range chunks {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = pushChunk(c)
		}()
	}
	wg.Wait()
}
