// Fixture for the ctxflow -fix rewrite: every finding here is mechanically
// fixable (the ...Context sibling has an identical signature modulo the
// prepended context), so applying the fixes must recompile and re-lint
// clean. The golden file next to this one pins the rewritten output.
package fixture

import "context"

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * f
	}
	return out
}

func scaleContext(ctx context.Context, xs []float64, f float64) []float64 {
	if ctx.Err() != nil {
		return nil
	}
	return scale(xs, f)
}

type runner struct{ steps int }

func (r *runner) Step() { r.steps++ }

func (r *runner) StepContext(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	r.steps++
}

func pipeline(ctx context.Context, xs []float64) []float64 {
	_ = ctx.Err()
	return scale(xs, 2)
}

func drive(ctx context.Context, r *runner) {
	_ = ctx.Err()
	r.Step()
}
