// Fixture for the maporder -fix rewrite: order-sensitive loops over maps
// whose shape permits the mechanical collect-then-sort rewrite. Applying the
// fixes must recompile and re-lint clean; the golden file pins the output.
package fixture

func keysOf(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func weighted(weights map[int]float64) float64 {
	sum := 0.0
	for id, w := range weights {
		sum += w * float64(id)
	}
	return sum
}
