// Fixture reproducing the PR 1 metrics.Silhouette bug: silhouette terms
// summed while ranging over the label→members map directly. Go's randomized
// map order changed the float accumulation order, which perturbed the last
// bits of the mean silhouette and flipped argmax decisions downstream
// (CondEns member selection) between identical runs. The maporder analyzer
// must fail this pattern so it can never be reintroduced.
package fixture

import "math"

func silhouetteMapOrder(points [][]float64, byLabel map[int][]int) float64 {
	var sum float64
	var count int
	for ci, own := range byLabel {
		for _, o := range own {
			if len(own) <= 1 {
				count++
				continue
			}
			var a float64
			for _, p := range own {
				if p != o {
					a += euclid(points[o], points[p])
				}
			}
			a /= float64(len(own) - 1)
			b := math.Inf(1)
			for cj, other := range byLabel {
				if cj == ci {
					continue
				}
				var s float64
				for _, p := range other {
					s += euclid(points[o], points[p])
				}
				if avg := s / float64(len(other)); avg < b {
					b = avg
				}
			}
			den := math.Max(a, b)
			if den > 0 {
				sum += (b - a) / den // want `float accumulation into "sum"`
			}
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
