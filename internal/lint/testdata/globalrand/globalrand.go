// Fixture for the globalrand analyzer: global math/rand state and
// time-seeded sources.
package fixture

import (
	"math/rand"
	"time"
)

func usesGlobal() int {
	return rand.Intn(10) // want `global rand.Intn`
}

func shufflesGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle`
}

var sink = rand.Float64 // want `global rand.Float64`

func timeSeeded() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `seeded from time.Now`
}

// The approved pattern: an explicit generator built from a config seed and
// threaded as *rand.Rand.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func draws(rng *rand.Rand) float64 {
	return rng.Float64()
}
