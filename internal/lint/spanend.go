package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpanEnd flags span-open calls whose end function can leak: the span
// helpers (obs.Span, obs.SpanCtx, multiclust.StartSpan, and the
// Recorder/sink StartSpan methods) return a close function that MUST run
// exactly once, or the collector's active-span table and the trace keep
// the span open forever and every child span re-roots under a stale
// parent. The safe idiom is to defer it at the open site:
//
//	defer obs.Span(rec, "algo.phase")()
//	ctx, end := obs.SpanCtx(ctx, rec, "algo.phase")
//	defer end()
//
// A finding is reported when the end function is discarded (statement
// call, blank assignment, `defer obs.Span(...)` without invoking the
// result) or when it is bound to a variable that is neither deferred nor
// plainly called on every return path of the enclosing function. An end
// value that escapes — returned, passed as an argument, captured by a
// closure, stored through a non-identifier — is assumed managed by the
// receiver and not flagged.
func SpanEnd() *Analyzer {
	return &Analyzer{
		Name: "spanend",
		Doc:  "span end functions neither deferred nor called on every return path",
		Run:  runSpanEnd,
	}
}

func runSpanEnd(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, spanEndScope(p, body)...)
			}
			return true // nested function literals get their own scope
		})
	}
	return out
}

// spanOpenCall matches a call that opens a span, returning the name of
// the opener and the index of the end function in its results:
// obs.Span / StartSpan methods return the end function directly (index
// 0); obs.SpanCtx and the facade's multiclust.StartSpan return
// (context, end) (index 1).
func spanOpenCall(p *Package, call *ast.CallExpr) (opener string, endIdx int, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", 0, false
	}
	if base, baseOK := sel.X.(*ast.Ident); baseOK {
		switch path := pkgName(p.Info, base); {
		case strings.HasSuffix(path, "internal/obs") && sel.Sel.Name == "Span":
			return "obs.Span", 0, true
		case strings.HasSuffix(path, "internal/obs") && sel.Sel.Name == "SpanCtx":
			return "obs.SpanCtx", 1, true
		case path == "multiclust" && sel.Sel.Name == "StartSpan":
			return "multiclust.StartSpan", 1, true
		}
	}
	selection := p.Info.Selections[sel]
	if selection != nil && selection.Kind() == types.MethodVal && sel.Sel.Name == "StartSpan" {
		if named, namedOK := deref(selection.Recv()).(*types.Named); namedOK {
			if pkg := named.Obj().Pkg(); pkg != nil && strings.HasSuffix(pkg.Path(), "internal/obs") {
				return named.Obj().Name() + ".StartSpan", 0, true
			}
		}
	}
	return "", 0, false
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// spanEndScope analyzes one function body. Nested function literals are
// separate scopes: their span calls are skipped here (the outer walk
// hands them their own spanEndScope call) and an end variable referenced
// inside one counts as an escape, not a plain call.
func spanEndScope(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && len(stack) > 0 {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		opener, endIdx, ok := spanOpenCall(p, call)
		if !ok {
			return true
		}
		if f, leaked := classifySpanOpen(p, body, call, opener, endIdx, stack); leaked {
			out = append(out, f)
		}
		return true
	})
	return out
}

// classifySpanOpen decides whether one span-open call leaks its end
// function, based on the syntactic context the call appears in.
func classifySpanOpen(p *Package, body *ast.BlockStmt, call *ast.CallExpr, opener string, endIdx int, stack []ast.Node) (Finding, bool) {
	if len(stack) == 0 {
		return Finding{}, false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		// obs.Span(...)() — invoked on the spot (usually under defer).
		if parent.Fun == call {
			return Finding{}, false
		}
		return Finding{}, false // span call as an argument: escapes
	case *ast.DeferStmt:
		if parent.Call == call {
			// defer obs.Span(...) defers the OPEN, so the end function
			// is produced at function exit and dropped.
			return p.finding("spanend", call.Pos(),
				"defer %s(...) discards the span end function — invoke it: defer %s(...)()", opener, opener), true
		}
		return Finding{}, false
	case *ast.ExprStmt:
		return p.finding("spanend", call.Pos(),
			"result of %s is discarded; the span never closes — defer the returned end function", opener), true
	case *ast.AssignStmt:
		if len(parent.Rhs) != 1 || parent.Rhs[0] != call || endIdx >= len(parent.Lhs) {
			return Finding{}, false
		}
		endID, ok := parent.Lhs[endIdx].(*ast.Ident)
		if !ok {
			return Finding{}, false // stored through an index/selector: escapes
		}
		if endID.Name == "_" {
			return p.finding("spanend", call.Pos(),
				"end function of %s assigned to the blank identifier; the span never closes", opener), true
		}
		obj := objectOf(p.Info, endID)
		if obj == nil {
			return Finding{}, false
		}
		return spanEndUsage(p, body, call, opener, endID, obj)
	default:
		return Finding{}, false // return statement, composite literal, ...: escapes
	}
}

// spanEndUsage checks how a tracked end variable is used inside body and
// reports the call leaky unless it is deferred, escapes, or is plainly
// called on every return path after the open.
func spanEndUsage(p *Package, body *ast.BlockStmt, call *ast.CallExpr, opener string, def *ast.Ident, obj types.Object) (Finding, bool) {
	type site struct {
		pos    token.Pos
		blocks []*ast.BlockStmt // enclosing blocks, outermost first
	}
	var (
		deferred bool
		escapes  bool
		calls    []site
		returns  []site
	)
	blocksOf := func(stack []ast.Node) []*ast.BlockStmt {
		blocks := []*ast.BlockStmt{body}
		for _, a := range stack {
			if b, ok := a.(*ast.BlockStmt); ok {
				blocks = append(blocks, b)
			}
		}
		return blocks
	}
	inNestedFunc := func(stack []ast.Node) bool {
		for _, a := range stack {
			if _, ok := a.(*ast.FuncLit); ok {
				return true
			}
		}
		return false
	}
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			if !inNestedFunc(stack) && x.Pos() > call.Pos() {
				returns = append(returns, site{x.Pos(), blocksOf(stack)})
			}
		case *ast.Ident:
			if x == def || objectOf(p.Info, x) != obj {
				return true
			}
			if inNestedFunc(stack) {
				escapes = true // captured by a closure
				return true
			}
			parent := stack[len(stack)-1]
			if c, ok := parent.(*ast.CallExpr); ok && c.Fun == x {
				switch stack[len(stack)-2].(type) {
				case *ast.ExprStmt:
					calls = append(calls, site{c.Pos(), blocksOf(stack)})
				case *ast.DeferStmt:
					deferred = true
				default:
					escapes = true // go end(), or a larger expression
				}
				return true
			}
			if a, ok := parent.(*ast.AssignStmt); ok && a.Tok == token.ASSIGN && len(a.Lhs) == 1 {
				if blank, ok := a.Lhs[0].(*ast.Ident); ok && blank.Name == "_" {
					return true // _ = end silences "unused", not this rule
				}
			}
			escapes = true // argument, return value, re-assignment, ...
		}
		return true
	})
	if deferred || escapes {
		return Finding{}, false
	}
	if len(calls) == 0 {
		return p.finding("spanend", call.Pos(),
			"end function %q of %s is never deferred or called; the span never closes", def.Name, opener), true
	}
	// The function can also fall off the end of its body.
	if n := len(body.List); n == 0 || !isReturn(body.List[n-1]) {
		returns = append(returns, site{body.End(), []*ast.BlockStmt{body}})
	}
	covered := func(ret site) bool {
		for _, c := range calls {
			if c.pos >= ret.pos {
				continue
			}
			// The call covers the return when its innermost block
			// also encloses the return.
			inner := c.blocks[len(c.blocks)-1]
			for _, b := range ret.blocks {
				if b == inner {
					return true
				}
			}
		}
		return false
	}
	for _, ret := range returns {
		if !covered(ret) {
			return p.finding("spanend", call.Pos(),
				"end function %q of %s is not called on every return path (the path through line %d leaks the span); defer it at the open site", def.Name, opener, p.position(ret.pos).Line), true
		}
	}
	return Finding{}, false
}

func isReturn(s ast.Stmt) bool {
	_, ok := s.(*ast.ReturnStmt)
	return ok
}
