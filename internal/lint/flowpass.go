package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FlowPass is the use-def half of the dataflow engine: reaching definitions
// of *types.Var objects computed over the function's CFG, plus a taint
// fixpoint built on the same def collection. Rules adopt it incrementally —
// build one per function with NewFlowPass and query it; rules that only need
// syntax keep using plain ast.Inspect.
//
// The lattice is the classic reaching-definitions one: for each variable, the
// set of definition sites that may reach a program point (union at joins, a
// new definition of the variable kills the previous set). Parameters, named
// results, and the receiver are defined at function entry.
type FlowPass struct {
	Pkg *Package
	Fn  ast.Node // *ast.FuncDecl or *ast.FuncLit
	CFG *CFG

	gen  map[*Block][]Def
	in   map[*Block]defSet
	out  map[*Block]defSet
	vars map[types.Object]bool // every local/param var defined in Fn
}

// Def is one definition site of one variable. Node is nil for entry
// definitions (parameters, receiver, named results).
type Def struct {
	Obj  types.Object
	Node ast.Node
}

// defSet maps a variable to the set of its definition nodes that may reach a
// point. The nil node (entry def) is represented like any other key.
type defSet map[types.Object]map[ast.Node]bool

func (s defSet) clone() defSet {
	c := make(defSet, len(s))
	for o, nodes := range s {
		m := make(map[ast.Node]bool, len(nodes))
		for n := range nodes {
			m[n] = true
		}
		c[o] = m
	}
	return c
}

// mergeFrom unions o into s and reports whether s grew.
func (s defSet) mergeFrom(o defSet) bool {
	grew := false
	for obj, nodes := range o {
		dst := s[obj]
		if dst == nil {
			dst = map[ast.Node]bool{}
			s[obj] = dst
		}
		for n := range nodes {
			if !dst[n] {
				dst[n] = true
				grew = true
			}
		}
	}
	return grew
}

func (s defSet) size() int {
	total := 0
	for _, m := range s {
		total += len(m)
	}
	return total
}

// NewFlowPass builds the CFG and solves reaching definitions for fn, which
// must be an *ast.FuncDecl (with body) or *ast.FuncLit from p.
func NewFlowPass(p *Package, fn ast.Node) *FlowPass {
	var body *ast.BlockStmt
	var ftype *ast.FuncType
	var recv *ast.FieldList
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body, ftype, recv = f.Body, f.Type, f.Recv
	case *ast.FuncLit:
		body, ftype = f.Body, f.Type
	}
	fp := &FlowPass{
		Pkg:  p,
		Fn:   fn,
		CFG:  BuildCFG(body),
		gen:  map[*Block][]Def{},
		in:   map[*Block]defSet{},
		out:  map[*Block]defSet{},
		vars: map[types.Object]bool{},
	}
	fp.collectGen(ftype, recv)
	fp.solve()
	return fp
}

// collectGen fills gen[b] with the definitions each block makes, in order,
// and seeds entry definitions for parameters / receiver / named results.
func (fp *FlowPass) collectGen(ftype *ast.FuncType, recv *ast.FieldList) {
	entry := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := fp.Pkg.Info.Defs[name]; obj != nil && name.Name != "_" {
					fp.vars[obj] = true
					fp.gen[fp.CFG.Entry] = append([]Def{{Obj: obj}}, fp.gen[fp.CFG.Entry]...)
				}
			}
		}
	}
	entry(recv)
	if ftype != nil {
		entry(ftype.Params)
		entry(ftype.Results)
	}
	for _, blk := range fp.CFG.Blocks {
		for _, n := range blk.Nodes {
			fp.genFromNode(blk, n)
		}
	}
}

// genFromNode records the definitions node n makes into gen[blk]. Nested
// function literals are opaque: their assignments run at an unknown time, so
// they neither generate nor kill definitions here.
func (fp *FlowPass) genFromNode(blk *Block, n ast.Node) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			fp.defOf(blk, lhs, s)
		}
	case *ast.IncDecStmt:
		fp.defOf(blk, s.X, s)
	case *ast.RangeStmt:
		fp.defOf(blk, s.Key, s)
		fp.defOf(blk, s.Value, s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						fp.defIdent(blk, name, s)
					}
				}
			}
		}
	case *ast.TypeSwitchStmt:
		// handled via its Assign statement when lowered into the head block
		if as, ok := s.Assign.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				fp.defOf(blk, lhs, s)
			}
		}
	}
}

func (fp *FlowPass) defOf(blk *Block, e ast.Expr, site ast.Node) {
	if e == nil {
		return
	}
	if id, ok := e.(*ast.Ident); ok {
		fp.defIdent(blk, id, site)
	}
	// Writes through selectors/indices (x.f = v, a[i] = v) define no local
	// variable object; field taint is handled separately by the analyzers.
}

func (fp *FlowPass) defIdent(blk *Block, id *ast.Ident, site ast.Node) {
	if id.Name == "_" {
		return
	}
	obj := objectOf(fp.Pkg.Info, id)
	if obj == nil || !isVar(obj) {
		return
	}
	fp.vars[obj] = true
	fp.gen[blk] = append(fp.gen[blk], Def{Obj: obj, Node: site})
}

// solve runs the forward worklist iteration:
// in[b] = ∪ out[preds]; out[b] = gen-with-kill applied over in[b].
func (fp *FlowPass) solve() {
	for _, blk := range fp.CFG.Blocks {
		fp.in[blk] = defSet{}
		fp.out[blk] = fp.transfer(blk, defSet{})
	}
	work := make([]*Block, len(fp.CFG.Blocks))
	copy(work, fp.CFG.Blocks)
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inSet := defSet{}
		for _, p := range blk.Preds {
			inSet.mergeFrom(fp.out[p])
		}
		fp.in[blk] = inSet
		newOut := fp.transfer(blk, inSet)
		// The transfer function is monotone in its input, so growth in
		// cardinality is exactly "the set changed".
		if newOut.size() != fp.out[blk].size() {
			fp.out[blk] = newOut
			work = append(work, blk.Succs...)
		}
	}
}

// transfer applies blk's definitions (in order, each killing the previous
// defs of its variable) to the incoming set.
func (fp *FlowPass) transfer(blk *Block, in defSet) defSet {
	out := in.clone()
	for _, d := range fp.gen[blk] {
		out[d.Obj] = map[ast.Node]bool{d.Node: true}
	}
	return out
}

// ReachingIn returns the definitions reaching the entry of blk, sorted by
// variable name then definition position for deterministic output.
func (fp *FlowPass) ReachingIn(blk *Block) []Def {
	return flatten(fp.in[blk])
}

// ReachingOut returns the definitions live at the exit of blk.
func (fp *FlowPass) ReachingOut(blk *Block) []Def {
	return flatten(fp.out[blk])
}

func flatten(s defSet) []Def {
	var out []Def
	for obj, nodes := range s {
		for n := range nodes {
			out = append(out, Def{Obj: obj, Node: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj != out[j].Obj {
			if out[i].Obj.Name() != out[j].Obj.Name() {
				return out[i].Obj.Name() < out[j].Obj.Name()
			}
			return out[i].Obj.Pos() < out[j].Obj.Pos()
		}
		return defPos(out[i]) < defPos(out[j])
	})
	return out
}

func defPos(d Def) token.Pos {
	if d.Node == nil {
		return token.NoPos
	}
	return d.Node.Pos()
}

// DefsReaching returns the definitions of obj that may reach stmt (the
// in-set of stmt's block, refined by any kills earlier in the same block).
func (fp *FlowPass) DefsReaching(obj types.Object, stmt ast.Node) []Def {
	blk := fp.CFG.BlockOf(stmt)
	if blk == nil {
		return nil
	}
	cur := map[ast.Node]bool{}
	for n := range fp.in[blk][obj] {
		cur[n] = true
	}
	for _, n := range blk.Nodes {
		if n.Pos() >= stmt.Pos() {
			break
		}
		for _, d := range defsOfNode(fp, blk, n) {
			if d.Obj == obj {
				cur = map[ast.Node]bool{d.Node: true}
			}
		}
	}
	var out []Def
	for n := range cur {
		out = append(out, Def{Obj: obj, Node: n})
	}
	sort.Slice(out, func(i, j int) bool { return defPos(out[i]) < defPos(out[j]) })
	return out
}

// defsOfNode re-derives the defs a single node contributes (used for the
// within-block refinement of DefsReaching).
func defsOfNode(fp *FlowPass, blk *Block, n ast.Node) []Def {
	var out []Def
	for _, d := range fp.gen[blk] {
		if d.Node == n {
			out = append(out, d)
		}
	}
	return out
}

// Vars returns every variable the pass tracks (params, receiver, named
// results, and locals defined in straight-line code), sorted by name.
func (fp *FlowPass) Vars() []types.Object {
	out := make([]types.Object, 0, len(fp.vars))
	for o := range fp.vars {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name() != out[j].Name() {
			return out[i].Name() < out[j].Name()
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

// ---- taint propagation ----

// Taint tracks which variables a seeded value may have flowed into, by
// iterating the function's assignments to a fixpoint. Seeds are expression
// predicates (e.g. "calls time.Now"); propagation follows assignments,
// short declarations, and simple call-free unary/binary/selector wrapping of
// tainted operands. First[obj] records the node that first tainted obj, for
// findings.
type Taint struct {
	Objs  map[types.Object]bool
	First map[types.Object]ast.Node
}

// TaintedBy computes the taint fixpoint for fn's body: a variable is tainted
// when some reaching assignment gives it a value containing a seed
// expression or another tainted variable.
func (fp *FlowPass) TaintedBy(isSeed func(ast.Expr) bool) *Taint {
	t := &Taint{Objs: map[types.Object]bool{}, First: map[types.Object]ast.Node{}}
	var body ast.Node
	switch f := fp.Fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	if body == nil {
		return t
	}
	// exprTainted: does e contain a seed or a tainted identifier?
	exprTainted := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if ex, ok := n.(ast.Expr); ok && isSeed(ex) {
				found = true
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := objectOf(fp.Pkg.Info, id); obj != nil && t.Objs[obj] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	mark := func(e ast.Expr, site ast.Node) {
		root := rootIdent(e)
		if root == nil {
			return
		}
		obj := objectOf(fp.Pkg.Info, root)
		if obj == nil || !isVar(obj) || t.Objs[obj] {
			return
		}
		t.Objs[obj] = true
		if _, ok := t.First[obj]; !ok {
			t.First[obj] = site
		}
	}
	for changed := true; changed; {
		changed = false
		before := len(t.Objs)
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					var rhs ast.Expr
					switch {
					case len(s.Rhs) == len(s.Lhs):
						rhs = s.Rhs[i]
					case len(s.Rhs) == 1:
						rhs = s.Rhs[0] // tuple assignment: taint all lhs
					}
					if rhs != nil && exprTainted(rhs) {
						mark(lhs, s)
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					var rhs ast.Expr
					switch {
					case len(s.Values) == len(s.Names):
						rhs = s.Values[i]
					case len(s.Values) == 1:
						rhs = s.Values[0]
					}
					if rhs != nil && exprTainted(rhs) {
						mark(name, s)
					}
				}
			}
			return true
		})
		if len(t.Objs) != before {
			changed = true
		}
	}
	return t
}

// Tainted reports whether e carries taint: it is itself a seed, contains a
// seed, or mentions a tainted variable.
func (t *Taint) Tainted(fp *FlowPass, isSeed func(ast.Expr) bool, e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ex, ok := n.(ast.Expr); ok && isSeed(ex) {
			found = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := objectOf(fp.Pkg.Info, id); obj != nil && t.Objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
