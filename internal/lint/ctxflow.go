package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow flags a call that drops an in-scope context on the floor when the
// callee has a context-capable sibling: a function (or method) named
// <callee>Context whose first parameter is a context.Context. Inside a
// ...Context entry point, calling kmeans.Run instead of kmeans.RunContext
// silently severs cancellation for the whole subtree — the deadline keeps
// ticking but nothing under the call can observe it. The lookup is
// interprocedural over everything the package imports, so cross-package
// drops (multiclust -> internal/kmeans) are caught, not just local ones.
//
// The rule fires only inside functions that actually have a named ctx
// parameter; a function without one has nothing to forward.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "in-scope ctx not forwarded to a callee with a ...Context-capable sibling",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxName := contextParamName(p, fn)
			if ctxName == "" {
				continue
			}
			enclosing := p.Info.Defs[fn.Name]
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callForwardsContext(p, call) {
					return true
				}
				id, callee := calleeFunc(p, call)
				if callee == nil || signatureTakesContext(callee) {
					return true
				}
				sibling := contextSibling(callee)
				if sibling == nil {
					return true
				}
				if types.Object(sibling) == enclosing {
					// FooContext delegating to foo after its own ctx check is
					// the implementation pattern, not a drop — and rewriting
					// it would produce a self-recursive call.
					return true
				}
				f := p.finding("ctxflow", call.Pos(),
					"call to %s drops %s: %s accepts a context; forward it so cancellation propagates",
					callee.Name(), ctxName, sibling.Name())
				if siblingFixSafe(callee, sibling) {
					f.Fixes = append(f.Fixes, ctxFlowFix(p, call, id, sibling, ctxName))
				}
				out = append(out, f)
				return true
			})
		}
	}
	return out
}

// contextParamName returns the name of fn's first named (non-underscore)
// context.Context parameter, or "".
func contextParamName(p *Package, fn *ast.FuncDecl) string {
	if fn.Type.Params == nil {
		return ""
	}
	for _, field := range fn.Type.Params.List {
		if !isContextType(p, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// callForwardsContext reports whether any argument of the call is itself a
// context.Context value.
func callForwardsContext(p *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextValue(p.Info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function or method to its name identifier
// and types.Func — nil for builtins, conversions, and calls through
// function-typed values.
func calleeFunc(p *Package, call *ast.CallExpr) (*ast.Ident, *types.Func) {
	fun := call.Fun
	switch x := fun.(type) {
	case *ast.IndexExpr:
		fun = x.X
	case *ast.IndexListExpr:
		fun = x.X
	}
	var id *ast.Ident
	switch x := fun.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil, nil
	}
	fn, _ := objectOf(p.Info, id).(*types.Func)
	return id, fn
}

// siblingFixSafe reports whether swapping callee for sibling is a pure
// mechanical rewrite: the sibling takes exactly ctx plus the callee's
// parameters and returns exactly the same results, so prepending the context
// argument cannot change any caller-visible type.
func siblingFixSafe(callee, sibling *types.Func) bool {
	cs, ok := callee.Type().(*types.Signature)
	if !ok {
		return false
	}
	ss, ok := sibling.Type().(*types.Signature)
	if !ok {
		return false
	}
	if ss.Params().Len() != cs.Params().Len()+1 || ss.Variadic() != cs.Variadic() {
		return false
	}
	for i := 0; i < cs.Params().Len(); i++ {
		if !types.Identical(cs.Params().At(i).Type(), ss.Params().At(i+1).Type()) {
			return false
		}
	}
	return types.Identical(cs.Results(), ss.Results())
}

// ctxFlowFix rewrites callee(args...) into sibling(ctx, args...): one edit
// renames the callee identifier, a second inserts the context as the first
// argument.
func ctxFlowFix(p *Package, call *ast.CallExpr, id *ast.Ident, sibling *types.Func, ctxName string) SuggestedFix {
	insert := ctxName
	if len(call.Args) > 0 {
		insert += ", "
	}
	return SuggestedFix{
		Message: "forward " + ctxName + " via " + sibling.Name(),
		Edits: []TextEdit{
			p.edit(id.Pos(), id.End(), sibling.Name()),
			p.edit(call.Lparen+1, call.Lparen+1, insert),
		},
	}
}

// contextSibling returns the <name>Context function or method next to fn —
// same package scope for functions, same method set for methods — whose
// first parameter is a context.Context. Returns nil when there is none.
func contextSibling(fn *types.Func) *types.Func {
	if fn.Pkg() == nil {
		return nil
	}
	name := fn.Name() + "Context"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
		if m, ok := obj.(*types.Func); ok && signatureTakesContext(m) {
			return m
		}
		return nil
	}
	if obj, ok := fn.Pkg().Scope().Lookup(name).(*types.Func); ok && signatureTakesContext(obj) {
		return obj
	}
	return nil
}

// signatureTakesContext reports whether fn's first parameter is a
// context.Context.
func signatureTakesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextValue(sig.Params().At(0).Type())
}

// isContextType reports whether the parameter type is context.Context.
func isContextType(p *Package, expr ast.Expr) bool {
	return isContextValue(p.Info.TypeOf(expr))
}

// isContextValue reports whether t is the context.Context interface type.
func isContextValue(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
