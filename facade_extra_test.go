package multiclust

import (
	"math"
	"math/rand"
	"testing"
)

// TestFacadeProjectedClustering drives the projected-clustering trio —
// PROCLUS, ORCLUS, DOC, MineClus — through the public API on one benchmark.
func TestFacadeProjectedClustering(t *testing.T) {
	objsA := make([]int, 60)
	objsB := make([]int, 60)
	for i := range objsA {
		objsA[i], objsB[i] = i, 60+i
	}
	ds, truth, err := SubspaceData(3, 120, 5, []SubspaceSpec{
		{Dims: []int{0, 1}, Size: 60, Width: 0.08, Objects: objsA},
		{Dims: []int{2, 3}, Size: 60, Width: 0.08, Objects: objsB},
	})
	if err != nil {
		t.Fatal(err)
	}
	pro, err := Proclus(ds.Points, ProclusConfig{K: 2, L: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f1 := SubspaceF1(truth, pro.Clusters); f1 < 0.7 {
		t.Errorf("PROCLUS F1 = %v", f1)
	}
	doc, err := DOC(ds.Points, DOCConfig{W: 0.06, Alpha: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f1 := SubspaceF1(truth, doc.Clusters); f1 < 0.6 {
		t.Errorf("DOC F1 = %v", f1)
	}
	mc, err := MineClus(ds.Points, MineClusConfig{W: 0.06, Alpha: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f1 := SubspaceF1(truth, mc.Clusters); f1 < 0.6 {
		t.Errorf("MineClus F1 = %v", f1)
	}
}

func TestFacadeOrclus(t *testing.T) {
	// Oriented clusters: spread along rotated directions.
	rng := rand.New(rand.NewSource(4))
	var pts [][]float64
	var truth []int
	dirs := [][]float64{{1 / math.Sqrt2, 1 / math.Sqrt2, 0}, {0, 1 / math.Sqrt2, -1 / math.Sqrt2}}
	centers := [][]float64{{0, 0, 0}, {7, 7, 7}}
	for c := 0; c < 2; c++ {
		for i := 0; i < 50; i++ {
			tt := rng.NormFloat64() * 3
			row := make([]float64, 3)
			for j := range row {
				row[j] = centers[c][j] + tt*dirs[c][j] + rng.NormFloat64()*0.1
			}
			pts = append(pts, row)
			truth = append(truth, c)
		}
	}
	res, err := Orclus(pts, OrclusConfig{K: 2, L: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ari := AdjustedRand(truth, res.Assignment.Labels); ari < 0.9 {
		t.Errorf("ORCLUS ARI = %v", ari)
	}
}

func TestFacadePredecon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts [][]float64
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{0.5 + rng.NormFloat64()*0.02, rng.Float64() * 1.5})
		pts = append(pts, []float64{2.5 + rng.Float64()*1.5, 3.5 + rng.NormFloat64()*0.02})
	}
	res, err := Predecon(pts, PredeconConfig{Eps: 2.0, MinPts: 5, Delta: 0.05, Lambda: 1, Kappa: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.K() < 2 {
		t.Errorf("PreDeCon K = %d", res.Assignment.K())
	}
}

func TestFacadeQualityAndDissFunctions(t *testing.T) {
	ds, hor, ver := FourBlobToy(1, 15)
	a := NewClustering(hor)
	b := NewClustering(ver)
	if NegSSEQuality()(ds.Points, a) >= 0 {
		t.Error("negSSE should be negative for a non-trivial clustering")
	}
	if RandDissimilarity()(a, b) <= 0 {
		t.Error("orthogonal views should be dissimilar")
	}
	q, diss := EvaluateSolutionSet(ds.Points, []*Clustering{a, b}, SilhouetteQuality(), VIDissimilarity())
	if q <= 0 || diss <= 0 {
		t.Errorf("combined objective = (%v, %v)", q, diss)
	}
	adco, err := ADCO(ds.Points, a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if adco <= 0 {
		t.Errorf("ADCO = %v", adco)
	}
}

func TestTaxonomyCoversFacade(t *testing.T) {
	// Every taxonomy entry's package exists in this module's layout; the
	// registry and the facade should stay in sync on headline names.
	names := map[string]bool{}
	for _, e := range Taxonomy() {
		names[e.Algorithm] = true
	}
	for _, want := range []string{"MineClus", "ORCLUS", "PreDeCon", "COALA", "CAMI", "OSCLU", "CoEM"} {
		if !names[want] {
			t.Errorf("taxonomy missing %s", want)
		}
	}
}
