package multiclust

import (
	"testing"
)

// TestFacadeSmoke exercises every remaining thin wrapper once so the public
// surface stays wired to the implementations.
func TestFacadeSmoke(t *testing.T) {
	ds, hor, ver := FourBlobToy(1, 15)
	given := NewClustering(hor)

	if _, err := MetaClustering(ds.Points, MetaClusteringConfig{K: 2, NumSolutions: 6, MetaClusters: 2, Seed: 1}); err != nil {
		t.Error(err)
	}
	if _, err := CIB(ds.Points, given, CIBConfig{K: 2, Seed: 1, Restarts: 1, MaxIter: 10}); err != nil {
		t.Error(err)
	}
	if _, err := MinCEntropy(ds.Points, []*Clustering{given}, MinCEntropyConfig{K: 2, Seed: 1, Restarts: 1, MaxIter: 3}); err != nil {
		t.Error(err)
	}
	if _, err := CondEns(ds.Points, given, CondEnsConfig{K: 2, NumSolutions: 5, Seed: 1}); err != nil {
		t.Error(err)
	}
	if _, err := Flexible(ds.Points, []*Clustering{given}, SilhouetteQuality(), RandDissimilarity(), FlexibleConfig{K: 2, Seed: 1, Restarts: 1, MaxIter: 5}); err != nil {
		t.Error(err)
	}
	if _, err := CAMI(ds.Points, CAMIConfig{K1: 2, K2: 2, Mu: 2, Seed: 1, Restarts: 2, MaxIter: 20}); err != nil {
		t.Error(err)
	}
	if _, err := Contingency(ds.Points, ContingencyConfig{K1: 2, K2: 2, Seed: 1, MaxIter: 5, Restarts: 1}); err != nil {
		t.Error(err)
	}
	if _, err := AlternativeTransform(ds.Points, given, KMeansBase(2, 1)); err != nil {
		t.Error(err)
	}
	if _, err := OrthogonalProjections(ds.Points, KMeansBase(2, 1), OrthogonalProjectionsConfig{MaxClusterings: 2}); err != nil {
		t.Error(err)
	}

	norm := ds.Normalize()
	if _, err := Schism(norm.Points, SchismConfig{Xi: 4, Tau: 0.05, MaxDim: 2}); err != nil {
		t.Error(err)
	}
	if _, err := Subclu(norm.Points, SubcluConfig{Eps: 0.1, MinPts: 3, MaxDim: 2}); err != nil {
		t.Error(err)
	}
	if _, err := Fires(norm.Points, FiresConfig{Eps: 0.02, MinPts: 3}); err != nil {
		t.Error(err)
	}
	if _, err := RIS(norm.Points, RISConfig{Eps: 0.1, MinPts: 3, MaxDim: 2, TopK: 3}); err != nil {
		t.Error(err)
	}
	if _, err := Enclus(norm.Points, EnclusConfig{Xi: 4, MaxEntropy: 16, MaxDim: 2}); err != nil {
		t.Error(err)
	}
	cl, err := Clique(norm.Points, CliqueConfig{Xi: 4, Tau: 0.1, MaxDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StatPC(cl.Grid, StatPCConfig{N: ds.N()}); err != nil {
		t.Error(err)
	}
	if _, err := Rescu(cl.Clusters, RescuConfig{}); err != nil {
		t.Error(err)
	}
	if _, err := Asclu(cl.Clusters, AscluConfig{OscluConfig: OscluConfig{}, Known: nil}); err != nil {
		t.Error(err)
	}

	views := [][][]float64{ds.Points, ds.Points}
	if _, err := MSC(ds.Points, MSCConfig{K: 2, Views: 2, DimsPer: 1, Seed: 1}); err != nil {
		t.Error(err)
	}
	if _, err := HSIC(ds.Points, ds.Points); err != nil {
		t.Error(err)
	}
	if _, err := ParallelUniverses(views, UniversesConfig{K: 2, Seed: 1, MaxIter: 10}); err != nil {
		t.Error(err)
	}
	if _, err := DistributedDBSCAN(ds.Points, DistributedDBSCANConfig{Eps: 0.2, MinPts: 3}); err != nil {
		t.Error(err)
	}
	if _, err := RandomProjectionEnsemble(ds.Points, RandomProjectionEnsembleConfig{K: 2, Runs: 3, Seed: 1}); err != nil {
		t.Error(err)
	}
	if s := SharedNMI(hor, [][]int{ver}); s < 0 {
		t.Error("SharedNMI negative")
	}
	if _, err := FromClusters(4, [][]int{{0, 1}, {2, 3}}); err != nil {
		t.Error(err)
	}
	sc := NewSubspaceCluster([]int{0, 1}, []int{0})
	if sc.Size() != 2 {
		t.Error("NewSubspaceCluster wrapper broken")
	}
	mr := NewMultiResult(given, NewClustering(ver))
	if mr.PairwiseDissimilarity(RandDissimilarity()) <= 0 {
		t.Error("MultiResult wrapper broken")
	}
	if ds := UniformHypercube(1, 10, 2); ds.N() != 10 {
		t.Error("UniformHypercube wrapper broken")
	}
	if ring, labels := RingAndBlob(1, 10, 5); ring.N() != 15 || len(labels) != 15 {
		t.Error("RingAndBlob wrapper broken")
	}
	if c := CombineLabels(hor, ver); len(c) != len(hor) {
		t.Error("CombineLabels wrapper broken")
	}
	if DistanceContrast(ds, 0) < 0 {
		t.Error("DistanceContrast wrapper broken")
	}
	if _, err := MineClus(norm.Points, MineClusConfig{W: 0.1, Seed: 1, MaxClusters: 2}); err != nil {
		t.Error(err)
	}
	if _, err := Proclus(ds.Points, ProclusConfig{K: 2, L: 2, Seed: 1}); err != nil {
		t.Error(err)
	}
	if _, err := DOC(norm.Points, DOCConfig{W: 0.1, Seed: 1, MaxClusters: 2}); err != nil {
		t.Error(err)
	}
	if _, err := TwoViewSpectral(ds.Points, ds.Points, 2, 1); err != nil {
		t.Error(err)
	}
	if _, err := MetricFlip(ds.Points, given, KMeansBase(2, 1)); err != nil {
		t.Error(err)
	}
	if _, err := Coala(ds.Points, given, CoalaConfig{K: 2}); err != nil {
		t.Error(err)
	}
	if _, err := CoEM(ds.Points, ds.Points, CoEMConfig{K: 2, Seed: 1, MaxIter: 5}); err != nil {
		t.Error(err)
	}
	if _, err := MVDBSCAN(views, MVDBSCANConfig{Eps: []float64{0.2, 0.2}, MinPts: 3, Mode: Union}); err != nil {
		t.Error(err)
	}
	if _, err := CSPA([][]int{hor, ver}, ConsensusConfig{K: 2}); err != nil {
		t.Error(err)
	}
	if _, err := DecKMeans(ds.Points, DecKMeansConfig{Ks: []int{2, 2}, Seed: 1, Restarts: 1, MaxIter: 10}); err != nil {
		t.Error(err)
	}
	if _, err := Orclus(ds.Points, OrclusConfig{K: 2, L: 1, Seed: 1}); err != nil {
		t.Error(err)
	}
	if _, err := Predecon(ds.Points, PredeconConfig{Eps: 0.3, MinPts: 3, Delta: 0.01}); err != nil {
		t.Error(err)
	}
	if _, err := ADCO(ds.Points, given, NewClustering(ver), 4); err != nil {
		t.Error(err)
	}
	if v := VariationOfInformation(hor, ver); v <= 0 {
		t.Error("VI wrapper broken")
	}
	if v := JaccardIndex(hor, hor); v != 1 {
		t.Error("Jaccard wrapper broken")
	}
	if v := PairF1(hor, hor); v != 1 {
		t.Error("PairF1 wrapper broken")
	}
	if v := MutualInformation(hor, ver); v < 0 {
		t.Error("MI wrapper broken")
	}
	if v := ConditionalEntropy(hor, ver); v < 0 {
		t.Error("H(A|B) wrapper broken")
	}
	if v := SubspaceDimPrecision(cl.Clusters, cl.Clusters); v <= 0 {
		t.Error("SubspaceDimPrecision wrapper broken")
	}
	if v := Redundancy(cl.Clusters, 0.5); v < 0 {
		t.Error("Redundancy wrapper broken")
	}
	if v := NMIDissimilarity()(given, given); v > 1e-9 {
		t.Error("NMIDissimilarity wrapper broken")
	}
	if v := VIDissimilarity()(given, given); v > 1e-9 {
		t.Error("VIDissimilarity wrapper broken")
	}
	if v := ADCODissimilarity(ds.Points, 4)(given, given); v > 1e-9 {
		t.Error("ADCODissimilarity wrapper broken")
	}
	if v := NegSSEQuality()(ds.Points, given); v >= 0 {
		t.Error("NegSSEQuality wrapper broken")
	}
	q, d := EvaluateSolutionSet(ds.Points, []*Clustering{given}, SilhouetteQuality(), RandDissimilarity())
	if q == 0 && d != 0 {
		t.Error("EvaluateSolutionSet wrapper broken")
	}
}
