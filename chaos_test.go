package multiclust

import (
	"errors"
	"math"
	"testing"

	"multiclust/internal/robust/chaos"
)

// chaosRunner adapts one facade algorithm for the fault-injection property
// suite. clustering may be nil for algorithms whose result has no flat
// labeling; the error/panic contract is still asserted.
type chaosRunner struct {
	name string
	run  func(pts [][]float64) (*Clustering, error)
}

func chaosRunners() []chaosRunner {
	given := func(n int) *Clustering {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i % 2
		}
		return NewClustering(labels)
	}
	return []chaosRunner{
		{"kmeans", func(p [][]float64) (*Clustering, error) {
			r, err := KMeans(p, KMeansConfig{K: 3, Seed: 1})
			if r == nil {
				return nil, err
			}
			return r.Clustering, err
		}},
		{"dbscan", func(p [][]float64) (*Clustering, error) {
			return DBSCAN(p, DBSCANConfig{Eps: 2, MinPts: 3})
		}},
		{"hierarchical", func(p [][]float64) (*Clustering, error) {
			dg, err := Hierarchical(p, AverageLink)
			if err != nil {
				return nil, err
			}
			return dg.Cut(3)
		}},
		{"em", func(p [][]float64) (*Clustering, error) {
			r, err := EM(p, EMConfig{K: 3, Seed: 1})
			if r == nil {
				return nil, err
			}
			return r.Clustering, err
		}},
		{"spectral", func(p [][]float64) (*Clustering, error) {
			r, err := Spectral(p, SpectralConfig{K: 3, Seed: 1})
			if r == nil {
				return nil, err
			}
			return r.Clustering, err
		}},
		{"metaclustering", func(p [][]float64) (*Clustering, error) {
			r, err := MetaClustering(p, MetaClusteringConfig{K: 3, NumSolutions: 4, Seed: 1})
			if r == nil || len(r.Representatives) == 0 {
				return nil, err
			}
			return r.Representatives[0], err
		}},
		{"coala", func(p [][]float64) (*Clustering, error) {
			r, err := Coala(p, given(len(p)), CoalaConfig{K: 2})
			if r == nil {
				return nil, err
			}
			return r.Clustering, err
		}},
		{"condens", func(p [][]float64) (*Clustering, error) {
			r, err := CondEns(p, given(len(p)), CondEnsConfig{K: 2, NumSolutions: 4, Seed: 1})
			if r == nil {
				return nil, err
			}
			return r.Clustering, err
		}},
		{"deckmeans", func(p [][]float64) (*Clustering, error) {
			r, err := DecKMeans(p, DecKMeansConfig{Ks: []int{2, 2}, Seed: 1, MaxIter: 20})
			if r == nil || len(r.Clusterings) == 0 {
				return nil, err
			}
			return r.Clusterings[0], err
		}},
		{"cami", func(p [][]float64) (*Clustering, error) {
			r, err := CAMI(p, CAMIConfig{K1: 2, K2: 2, Mu: 2, Seed: 1, MaxIter: 20})
			if r == nil {
				return nil, err
			}
			return r.Clustering1, err
		}},
		{"proclus", func(p [][]float64) (*Clustering, error) {
			r, err := Proclus(p, ProclusConfig{K: 2, L: 2, Seed: 1})
			if r == nil {
				return nil, err
			}
			return r.Assignment, err
		}},
		{"orclus", func(p [][]float64) (*Clustering, error) {
			r, err := Orclus(p, OrclusConfig{K: 2, L: 2, Seed: 1})
			if r == nil {
				return nil, err
			}
			return r.Assignment, err
		}},
		{"doc", func(p [][]float64) (*Clustering, error) {
			_, err := DOC(p, DOCConfig{W: 2, Seed: 1, MaxClusters: 2})
			return nil, err
		}},
		{"mineclus", func(p [][]float64) (*Clustering, error) {
			_, err := MineClus(p, MineClusConfig{W: 2, Seed: 1, MaxClusters: 2})
			return nil, err
		}},
		{"predecon", func(p [][]float64) (*Clustering, error) {
			r, err := Predecon(p, PredeconConfig{Eps: 2, MinPts: 3, Delta: 0.5})
			if r == nil {
				return nil, err
			}
			return r.Assignment, err
		}},
		{"coem", func(p [][]float64) (*Clustering, error) {
			r, err := CoEM(p, p, CoEMConfig{K: 2, Seed: 1, MaxIter: 10})
			if r == nil {
				return nil, err
			}
			return r.Clustering, err
		}},
		{"mvdbscan", func(p [][]float64) (*Clustering, error) {
			return MVDBSCAN([][][]float64{p, p}, MVDBSCANConfig{Eps: []float64{2, 2}, MinPts: 3, Mode: Union})
		}},
		{"rpensemble", func(p [][]float64) (*Clustering, error) {
			r, err := RandomProjectionEnsemble(p, RandomProjectionEnsembleConfig{K: 2, Runs: 3, Seed: 1})
			if r == nil {
				return nil, err
			}
			return r.Consensus, err
		}},
	}
}

// typedInputError reports whether err carries one of the input-rejection
// sentinels the validation gate is contracted to produce.
func typedInputError(err error) bool {
	return errors.Is(err, ErrInvalidInput) || errors.Is(err, ErrShape) || errors.Is(err, ErrEmptyDataset)
}

// TestChaosSuite is the fault-injection property: for every corrupter in
// the battery and every facade algorithm, the call must (a) never panic,
// (b) reject invalid damage with a typed input error, and (c) on valid
// damage either succeed with a Validate-clean, NaN-free clustering or fail
// with a typed, non-panic error.
func TestChaosSuite(t *testing.T) {
	centers := [][]float64{{0, 0, 0, 0}, {8, 8, 0, 0}, {0, 8, 8, 0}}
	ds, _ := GaussianBlobs(11, 42, centers, 0.7)
	base := ds.Points

	for _, c := range chaos.Suite() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for _, seed := range []int64{1, 2, 3} {
				damaged := c.Apply(base, seed)
				for _, r := range chaosRunners() {
					clust, err := func() (cl *Clustering, e error) {
						defer func() {
							if rec := recover(); rec != nil {
								t.Errorf("%s/seed=%d: panic escaped the facade: %v", r.name, seed, rec)
							}
						}()
						return r.run(damaged)
					}()
					if !c.Valid {
						if err == nil {
							t.Errorf("%s/seed=%d: accepted invalid damage", r.name, seed)
						} else if !typedInputError(err) {
							t.Errorf("%s/seed=%d: untyped rejection %v", r.name, seed, err)
						}
						continue
					}
					if err != nil {
						if errors.Is(err, ErrPanic) {
							t.Errorf("%s/seed=%d: internal panic on valid damage: %v", r.name, seed, err)
						}
						continue
					}
					if clust != nil {
						checkClustering(t, r.name, clust, len(damaged))
					}
				}
			}
		})
	}
}

// TestChaosSanitizeRecovers: invalid damage becomes clusterable after a
// Sanitize pass, closing the loop between the corrupters and the repair
// policies.
func TestChaosSanitizeRecovers(t *testing.T) {
	centers := [][]float64{{0, 0, 0}, {8, 8, 8}}
	ds, _ := GaussianBlobs(13, 30, centers, 0.5)
	for _, c := range []chaos.Corrupter{chaos.NaNRows(3), chaos.InfSpikes(4), chaos.RaggedRows(2)} {
		t.Run(c.Name, func(t *testing.T) {
			damaged := c.Apply(ds.Points, 5)
			if _, err := KMeans(damaged, KMeansConfig{K: 2, Seed: 1}); err == nil {
				t.Fatal("damage was accepted without repair")
			}
			for _, policy := range []Policy{DropRows, ImputeMean} {
				clean, rep, err := Sanitize(damaged, policy)
				if err != nil {
					t.Fatalf("%v: %v", policy, err)
				}
				if rep.Clean() {
					t.Errorf("%v: report claims nothing changed", policy)
				}
				res, err := KMeans(clean, KMeansConfig{K: 2, Seed: 1})
				if err != nil {
					t.Fatalf("%v: clustering after repair: %v", policy, err)
				}
				checkClustering(t, c.Name+"/"+policy.String(), res.Clustering, len(clean))
				if math.IsNaN(res.SSE) {
					t.Errorf("%v: SSE is NaN after repair", policy)
				}
			}
		})
	}
}
