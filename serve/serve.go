// Package serve is the public surface of multiclust's clustering service:
// the async job engine (bounded queue, per-job deadlines, deterministic
// retry/backoff, idempotency keys, graceful drain) and its HTTP API,
// re-exported from internal/jobs so programs can embed the service without
// reaching into internal packages.
//
// Minimal embedding:
//
//	eng := serve.New(serve.Config{Workers: 4, QueueSize: 128})
//	mux := http.NewServeMux()
//	mux.Handle("/v1/jobs", eng.Handler())
//	mux.Handle("/v1/jobs/", eng.Handler())
//	// ... serve mux, and on shutdown:
//	ctx, stop := context.WithTimeout(context.Background(), 10*time.Second)
//	defer stop()
//	report := eng.Drain(ctx)
//
// The `multiclust -serve` CLI wires exactly this engine onto the ops mux
// next to /metrics, /readyz and the pprof endpoints.
package serve

import (
	"io"

	"multiclust/internal/jobs"
	"multiclust/internal/obs"
)

// Core service types, re-exported verbatim.
type (
	// Engine is the bounded async job engine; see New.
	Engine = jobs.Engine
	// Config sizes the engine (workers, queue bound, timeouts, retry
	// budget and backoff schedule).
	Config = jobs.Config
	// Spec is one job submission: dataset plus algorithm knobs.
	Spec = jobs.Spec
	// Job is one admitted clustering run.
	Job = jobs.Job
	// State is a job's lifecycle position.
	State = jobs.State
	// Status is an immutable snapshot of one job.
	Status = jobs.Status
	// Outcome is the flat result surface of a finished job.
	Outcome = jobs.Outcome
	// Runner executes one attempt of a job; override via Config.Runners.
	Runner = jobs.Runner
	// StreamHandle is the live incremental learner behind one streaming
	// job ("stream": true); custom implementations plug in via
	// Config.Streams.
	StreamHandle = jobs.StreamHandle
	// StreamFactory builds the StreamHandle for an admitted streaming
	// job from its spec.
	StreamFactory = jobs.StreamFactory
	// DrainReport summarizes what graceful shutdown did with admitted jobs.
	DrainReport = jobs.DrainReport
	// Logger is the structured JSONL logger Config.Log accepts; build one
	// with NewLogger.
	Logger = obs.Logger
	// LogLevel orders log severities for NewLogger / ParseLogLevel.
	LogLevel = obs.LogLevel
)

// Lifecycle states.
const (
	StateQueued    = jobs.StateQueued
	StateRunning   = jobs.StateRunning
	StateDone      = jobs.StateDone
	StatePartial   = jobs.StatePartial
	StateFailed    = jobs.StateFailed
	StateCancelled = jobs.StateCancelled
)

// Log levels for NewLogger.
const (
	LogDebug = obs.LogDebug
	LogInfo  = obs.LogInfo
	LogWarn  = obs.LogWarn
	LogError = obs.LogError
)

// Typed admission and lookup errors; the HTTP layer maps them to 429, 503,
// 404, 400 and 409.
var (
	ErrQueueFull = jobs.ErrQueueFull
	ErrDraining  = jobs.ErrDraining
	ErrNotFound  = jobs.ErrNotFound
	ErrBadSpec   = jobs.ErrBadSpec
	ErrConflict  = jobs.ErrConflict
)

// New builds a job engine and starts its worker pool. The zero Config
// resolves to conservative defaults; stop the engine with Drain.
func New(cfg Config) *Engine { return jobs.New(cfg) }

// Algorithms lists the service's built-in algorithm names.
func Algorithms() []string { return jobs.Algorithms() }

// StreamAlgorithms lists the built-in incremental algorithms accepted by
// streaming ("stream": true) job specs.
func StreamAlgorithms() []string { return jobs.StreamAlgorithms() }

// NewLogger builds a structured JSONL logger writing to w, dropping lines
// below min. Wire it into Config.Log for per-job lifecycle lines and into
// the ops mux options for HTTP access logs.
func NewLogger(w io.Writer, min LogLevel) *Logger { return obs.NewLogger(w, min) }

// ParseLogLevel maps a level name ("debug", "info", "warn", "error") to
// its LogLevel — the parser behind the CLI's -log-level flag.
func ParseLogLevel(s string) (LogLevel, error) { return obs.ParseLogLevel(s) }
