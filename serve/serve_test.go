package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"multiclust"
	"multiclust/serve"
)

func TestPublicSurfaceEndToEnd(t *testing.T) {
	eng := serve.New(serve.Config{Workers: 2, QueueSize: 16})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		eng.Drain(ctx)
	}()

	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	body := `{"algo":"kmeans","points":[[0,0],[0,1],[10,10],[10,11]],"k":2,"seed":1}`
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, sub)
	}

	j, err := eng.Get(sub.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job never finished")
	}
	if j.State() != serve.StateDone {
		t.Fatalf("state = %v (err %v), want done", j.State(), j.Err())
	}
	if r := j.Result(); r == nil || r.K != 2 {
		t.Fatalf("result = %+v", r)
	}
}

func TestCustomRunnerThroughFacadeAlias(t *testing.T) {
	// An embedder outside the module can only name the recorder through the
	// facade alias; this pins that the seam stays implementable.
	custom := func(_ context.Context, spec serve.Spec, _ int64, _ multiclust.Recorder) (*serve.Outcome, error) {
		return &serve.Outcome{Labels: make([]int, len(spec.Points)), K: 1}, nil
	}
	eng := serve.New(serve.Config{Workers: 1, Runners: map[string]serve.Runner{"custom": custom}})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		eng.Drain(ctx)
	}()
	j, dup, err := eng.Submit(serve.Spec{Algo: "custom", Points: [][]float64{{1, 2}}})
	if err != nil || dup {
		t.Fatalf("Submit: dup=%v err=%v", dup, err)
	}
	<-j.Done()
	if j.State() != serve.StateDone {
		t.Fatalf("state = %v, want done", j.State())
	}
}

func TestStreamingLifecycleThroughFacade(t *testing.T) {
	eng := serve.New(serve.Config{Workers: 2, QueueSize: 16})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		eng.Drain(ctx)
	}()

	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	body := `{"algo":"kmeans","stream":true,"points":[[0,0],[0,1],[10,10],[10,11]],"k":2,"seed":1}`
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, sub)
	}

	patch := func(raw string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPatch, srv.URL+"/v1/jobs/"+sub.ID, strings.NewReader(raw))
		if err != nil {
			t.Fatalf("new request: %v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatalf("patch: %v", err)
		}
		return resp
	}

	resp = patch(`{"points":[[0,2],[10,12]]}`)
	var app struct {
		ChunksAcked int   `json:"chunks_acked"`
		RowsAcked   int64 `json:"rows_acked"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&app); err != nil {
		t.Fatalf("decode append: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || app.ChunksAcked != 2 || app.RowsAcked != 6 {
		t.Fatalf("append: status %d, body %+v", resp.StatusCode, app)
	}

	resp = patch(`{"final":true}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("final append: status %d", resp.StatusCode)
	}

	j, err := eng.Get(sub.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("stream never finished")
	}
	if j.State() != serve.StateDone {
		t.Fatalf("state = %v (err %v), want done", j.State(), j.Err())
	}
	if r := j.Result(); r == nil || r.Stats["rows_seen"] != 6 {
		t.Fatalf("result = %+v, want rows_seen 6", r)
	}
	// A chunk after the close contradicts recorded state: the re-exported
	// conflict sentinel must match the one the engine returns.
	if _, err := eng.Append(sub.ID, [][]float64{{1, 1}}, false); !errors.Is(err, serve.ErrConflict) {
		t.Fatalf("append after close: want serve.ErrConflict, got %v", err)
	}
}

func TestCustomStreamFactoryThroughFacadeAlias(t *testing.T) {
	// Same seam-pinning as the custom Runner test: an embedder must be able
	// to plug a streaming learner using only serve-exported names.
	eng := serve.New(serve.Config{
		Workers: 1,
		Streams: map[string]serve.StreamFactory{
			"counter": func(serve.Spec) (serve.StreamHandle, error) {
				return &countingStream{}, nil
			},
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		eng.Drain(ctx)
	}()

	j, _, err := eng.Submit(serve.Spec{Algo: "counter", Stream: true, Points: [][]float64{{1}, {2}}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := eng.Append(j.ID, [][]float64{{3}}, true); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("stream never finished")
	}
	if j.State() != serve.StateDone {
		t.Fatalf("state = %v (err %v), want done", j.State(), j.Err())
	}
	if r := j.Result(); r == nil || r.Stats["rows"] != 3 {
		t.Fatalf("result = %+v, want rows 3", r)
	}
}

// countingStream is the minimal StreamHandle an embedder might write: it
// only tallies rows. The engine serializes calls, so no locking is needed.
type countingStream struct{ rows int }

func (c *countingStream) PushChunk(_ context.Context, rows [][]float64) error {
	c.rows += len(rows)
	return nil
}

func (c *countingStream) Snapshot(context.Context) (*serve.Outcome, error) {
	return &serve.Outcome{K: 1, Stats: map[string]float64{"rows": float64(c.rows)}}, nil
}

func TestErrorsAndAlgorithmsReExported(t *testing.T) {
	eng := serve.New(serve.Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		eng.Drain(ctx)
	}()
	if _, _, err := eng.Submit(serve.Spec{Algo: "nope", Points: [][]float64{{1}}}); !errors.Is(err, serve.ErrBadSpec) {
		t.Fatalf("want serve.ErrBadSpec, got %v", err)
	}
	if _, err := eng.Get("j-404"); !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("want serve.ErrNotFound, got %v", err)
	}
	algos := serve.Algorithms()
	if len(algos) == 0 {
		t.Fatal("Algorithms() empty")
	}
	found := false
	for _, a := range algos {
		if a == "kmeans" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Algorithms() = %v, want kmeans present", algos)
	}
	streams := serve.StreamAlgorithms()
	if len(streams) == 0 {
		t.Fatal("StreamAlgorithms() empty")
	}
	found = false
	for _, a := range streams {
		if a == "kmeans" {
			found = true
		}
	}
	if !found {
		t.Fatalf("StreamAlgorithms() = %v, want kmeans present", streams)
	}
}
