package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"multiclust"
	"multiclust/serve"
)

func TestPublicSurfaceEndToEnd(t *testing.T) {
	eng := serve.New(serve.Config{Workers: 2, QueueSize: 16})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		eng.Drain(ctx)
	}()

	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	body := `{"algo":"kmeans","points":[[0,0],[0,1],[10,10],[10,11]],"k":2,"seed":1}`
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, sub)
	}

	j, err := eng.Get(sub.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job never finished")
	}
	if j.State() != serve.StateDone {
		t.Fatalf("state = %v (err %v), want done", j.State(), j.Err())
	}
	if r := j.Result(); r == nil || r.K != 2 {
		t.Fatalf("result = %+v", r)
	}
}

func TestCustomRunnerThroughFacadeAlias(t *testing.T) {
	// An embedder outside the module can only name the recorder through the
	// facade alias; this pins that the seam stays implementable.
	custom := func(_ context.Context, spec serve.Spec, _ int64, _ multiclust.Recorder) (*serve.Outcome, error) {
		return &serve.Outcome{Labels: make([]int, len(spec.Points)), K: 1}, nil
	}
	eng := serve.New(serve.Config{Workers: 1, Runners: map[string]serve.Runner{"custom": custom}})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		eng.Drain(ctx)
	}()
	j, dup, err := eng.Submit(serve.Spec{Algo: "custom", Points: [][]float64{{1, 2}}})
	if err != nil || dup {
		t.Fatalf("Submit: dup=%v err=%v", dup, err)
	}
	<-j.Done()
	if j.State() != serve.StateDone {
		t.Fatalf("state = %v, want done", j.State())
	}
}

func TestErrorsAndAlgorithmsReExported(t *testing.T) {
	eng := serve.New(serve.Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		eng.Drain(ctx)
	}()
	if _, _, err := eng.Submit(serve.Spec{Algo: "nope", Points: [][]float64{{1}}}); !errors.Is(err, serve.ErrBadSpec) {
		t.Fatalf("want serve.ErrBadSpec, got %v", err)
	}
	if _, err := eng.Get("j-404"); !errors.Is(err, serve.ErrNotFound) {
		t.Fatalf("want serve.ErrNotFound, got %v", err)
	}
	algos := serve.Algorithms()
	if len(algos) == 0 {
		t.Fatal("Algorithms() empty")
	}
	found := false
	for _, a := range algos {
		if a == "kmeans" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Algorithms() = %v, want kmeans present", algos)
	}
}
