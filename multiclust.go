// Package multiclust is a library for discovering multiple clustering
// solutions: groupings of the same objects in different views of the data.
//
// It implements the full taxonomy of the tutorial "Discovering Multiple
// Clustering Solutions" (Müller, Günnemann, Färber, Seidl; SDM 2011 / ICDE
// 2012): alternative clustering in the original data space, orthogonal
// space transformations, subspace projections, and clustering over multiple
// given views/sources — plus the base learners (k-means, EM, DBSCAN,
// hierarchical, spectral), the comparison measures used as quality Q and
// dissimilarity Diss functions, and deterministic synthetic data generators
// with known multi-view ground truth.
//
// This root package is a facade: every algorithm, metric and generator is
// re-exported here under one import path, with the implementations living
// in the internal packages. Names follow the surveyed papers; each aliased
// symbol's documentation (on the internal type) cites its source.
//
// # Failure semantics
//
// Every exported algorithm validates its input (rectangular, finite, label
// vectors covering the dataset) before running and converts any internal
// panic into an error wrapping ErrPanic, so no call here can crash the
// process or silently compute on NaN-contaminated data. Errors are typed
// sentinels matched with errors.Is: ErrEmptyDataset, ErrInvalidInput,
// ErrShape, ErrInterrupted, ErrDegenerate, ErrPanic. The iterative
// algorithms additionally offer ...Context variants that honour
// cancellation at iteration boundaries, returning the best result so far
// wrapped in ErrInterrupted.
//
// # Quick start
//
//	ds, horizontal, _ := multiclust.FourBlobToy(1, 25)
//	given := multiclust.NewClustering(horizontal)
//	alt, err := multiclust.Coala(ds.Points, given, multiclust.CoalaConfig{K: 2})
//	if err != nil { ... }
//	fmt.Println(multiclust.AdjustedRand(horizontal, alt.Clustering.Labels)) // ~0: a true alternative
package multiclust

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"multiclust/internal/alternative"
	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/dbscan"
	"multiclust/internal/dist"
	"multiclust/internal/em"
	"multiclust/internal/hierarchical"
	"multiclust/internal/kmeans"
	"multiclust/internal/metaclust"
	"multiclust/internal/metrics"
	"multiclust/internal/multiview"
	"multiclust/internal/obs"
	"multiclust/internal/orthogonal"
	"multiclust/internal/parallel"
	"multiclust/internal/robust"
	"multiclust/internal/simultaneous"
	"multiclust/internal/spectral"
	"multiclust/internal/stream"
	"multiclust/internal/subspace"
	"multiclust/internal/taxonomy"
)

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

// SetWorkers installs a process-wide default worker count for every parallel
// hot path (pairwise distances, k-means restarts and assignment, DBSCAN
// region queries, spectral affinities, ensemble generation). It takes
// precedence over the MULTICLUST_WORKERS environment variable and the
// GOMAXPROCS fallback but is overridden by a positive Workers field on an
// algorithm's config. n <= 0 restores env/GOMAXPROCS resolution. Results
// are byte-identical for every worker count.
func SetWorkers(n int) { parallel.SetDefault(n) }

// WorkersDefault reports the process-wide default installed with SetWorkers
// (0 when unset).
func WorkersDefault() int { return parallel.Default() }

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

// Recorder receives instrumentation events from the hot paths: counters
// (k-means reassignments, apriori candidates pruned, DBSCAN region
// queries, tasks dispatched by the worker pool), gauges, per-iteration
// observations (SSE per k-means iteration, log-likelihood per EM
// iteration, co-EM agreement per round) and timed spans. When no recorder
// is installed the instrumentation costs one nil check per event — zero
// allocations, pinned by obs_bench_test.go.
type Recorder = obs.Recorder

// Collector is the in-memory Recorder: thread-safe under any worker
// count, with deterministic exports (Snapshot, WriteProm) for a fixed
// seed.
type Collector = obs.Collector

// TraceWriter is the streaming Recorder: one JSON object per event
// (JSONL), for `cmd/multiclust -trace out.jsonl` style capture.
type TraceWriter = obs.TraceWriter

// NewCollector returns an empty in-memory recorder.
func NewCollector() *Collector { return obs.NewCollector() }

// NewTraceWriter returns a recorder streaming JSONL events to w. The
// caller owns buffering and closing of w; check Err() after the run.
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewTraceWriter(w) }

// SetRecorder installs a process-wide recorder consulted by every
// instrumented hot path (the observability analogue of SetWorkers). Pass
// nil to disable. A recorder carried by a context (WithRecorder) takes
// precedence for the call it is passed to.
func SetRecorder(r Recorder) { obs.SetDefault(r) }

// RecorderDefault returns the process-wide recorder installed with
// SetRecorder, or nil.
func RecorderDefault() Recorder { return obs.Default() }

// WithRecorder returns a context carrying r; the ...Context algorithm
// variants report into it instead of the process-wide recorder. Hot paths
// without a context parameter (the subspace miners, co-EM) see only the
// process-wide recorder.
func WithRecorder(ctx context.Context, r Recorder) context.Context {
	return obs.NewContext(ctx, r)
}

// TeeRecorders fans events out to every non-nil argument — e.g. a
// Collector for a metrics dump plus a TraceWriter for the event stream.
// It returns nil when no live recorder remains, preserving the disabled
// fast path.
func TeeRecorders(rs ...Recorder) Recorder { return obs.Tee(rs...) }

// SpanID identifies one span instance in the trace tree; 0 means "no
// span". Recorder implementations receive it in StartSpan.
type SpanID = obs.SpanID

// StartSpan opens an application-level span named name as a child of any
// span already carried by ctx, resolving the recorder like the
// ...Context algorithm variants do (context recorder, else the process
// default). It returns the derived context — pass it into library calls
// so their spans nest beneath yours in the trace tree — and the function
// that closes the span. The span also applies runtime/pprof goroutine
// labels ("algo", "phase" from the name around its last dot), so CPU
// profile samples inside it are attributable; the end function restores
// the caller's labels. With no recorder installed it returns ctx
// unchanged and a no-op end at zero allocations.
func StartSpan(ctx context.Context, name string) (context.Context, func()) {
	return obs.SpanCtx(ctx, obs.From(ctx), name)
}

// WriteChromeTrace converts a JSONL trace captured by a TraceWriter
// (read from r) into the Chrome trace-event format on w, loadable in
// chrome://tracing or Perfetto: one complete event per span, grouped
// into tracks by root span. `cmd/multiclust -trace out.jsonl -chrome
// out.json` wraps this.
func WriteChromeTrace(r io.Reader, w io.Writer) error { return obs.WriteChromeTrace(r, w) }

// RuntimePoller periodically samples Go runtime metrics (goroutines,
// live heap, GC pause and scheduling-latency totals) into a Collector as
// runtime.* gauges; stop it with Stop. `multiclust -serve` runs one so
// /metrics carries process health next to workload counters.
type RuntimePoller = obs.RuntimePoller

// StartRuntimePoller samples runtime metrics into c immediately and then
// every interval (clamped to >=100ms) until Stop.
func StartRuntimePoller(c *Collector, interval time.Duration) *RuntimePoller {
	return obs.StartRuntimePoller(c, interval)
}

// ---------------------------------------------------------------------------
// Robustness — typed errors, validation, sanitization
// ---------------------------------------------------------------------------

// Typed error sentinels; match with errors.Is. Every error returned by this
// package wraps one of these (or is a plain configuration error).
var (
	// ErrEmptyDataset marks calls on zero rows.
	ErrEmptyDataset = core.ErrEmptyDataset
	// ErrInvalidInput marks NaN/Inf contamination, nil inputs, or invalid
	// configuration values.
	ErrInvalidInput = core.ErrInvalidInput
	// ErrShape marks ragged rows and mismatched lengths.
	ErrShape = core.ErrShape
	// ErrInterrupted marks context cancellation; the accompanying result is
	// the valid best-so-far state at the last iteration boundary.
	ErrInterrupted = core.ErrInterrupted
	// ErrDegenerate marks numerically collapsed outcomes (e.g. a non-finite
	// EM log-likelihood) after the retry budget is exhausted.
	ErrDegenerate = core.ErrDegenerate
	// ErrPanic marks an internal panic converted to an error at the facade.
	ErrPanic = core.ErrPanic
)

// Policy selects how Sanitize repairs invalid rows; Report records what a
// pass changed.
type (
	Policy = robust.Policy
	Report = robust.Report
)

// Sanitization policies.
const (
	Reject     = robust.Reject
	DropRows   = robust.DropRows
	ImputeMean = robust.ImputeMean
)

// Validation and repair entry points. ValidateDataset is the gate every
// algorithm in this package runs behind; call it (or Sanitize) directly to
// check data once and skip repeated validation cost.
var (
	ValidateDataset = robust.ValidateDataset
	ValidateLabels  = robust.ValidateLabels
	ValidatePair    = metrics.ValidatePair
	Sanitize        = robust.Sanitize
)

// retryBudget bounds the deterministic reseed schedule (Seed, Seed+1, ...)
// used when a stochastic fit degenerates; see internal/robust.Retry.
const retryBudget = 3

// ---------------------------------------------------------------------------
// Core types
// ---------------------------------------------------------------------------

// Clustering is a flat (partial) partition of n objects; label Noise marks
// unclustered objects.
type Clustering = core.Clustering

// SubspaceCluster is an (object set, dimension set) pair.
type SubspaceCluster = core.SubspaceCluster

// SubspaceClustering is a result set of subspace clusters.
type SubspaceClustering = core.SubspaceClustering

// MultiResult is a set of clustering solutions over one database.
type MultiResult = core.MultiResult

// Noise is the label of unclustered objects.
const Noise = core.Noise

// NewClustering wraps a label vector.
func NewClustering(labels []int) *Clustering { return core.NewClustering(labels) }

// NewMultiResult bundles clustering solutions for twin-objective evaluation.
func NewMultiResult(clusterings ...*Clustering) *MultiResult {
	return core.NewMultiResult(clusterings...)
}

// NewSubspaceCluster builds a subspace cluster from object and dimension
// index sets.
func NewSubspaceCluster(objects, dims []int) SubspaceCluster {
	return core.NewSubspaceCluster(objects, dims)
}

// FromClusters builds a Clustering of n objects from explicit member lists.
func FromClusters(n int, clusters [][]int) (*Clustering, error) {
	return core.FromClusters(n, clusters)
}

// ---------------------------------------------------------------------------
// Datasets and generators
// ---------------------------------------------------------------------------

// Dataset is a table of n points in d dimensions.
type Dataset = dataset.Dataset

// ViewSpec describes one hidden view for MultiViewGaussians.
type ViewSpec = dataset.ViewSpec

// SubspaceSpec describes one hidden subspace cluster for SubspaceData.
type SubspaceSpec = dataset.SubspaceSpec

// NewDataset wraps points.
func NewDataset(points [][]float64) *Dataset { return dataset.New(points) }

// ReadCSV parses a numeric CSV dataset. Ragged rows and non-finite values
// are rejected with positional errors (ErrShape / ErrInvalidInput).
func ReadCSV(r io.Reader, hasHeader bool) (*Dataset, error) { return dataset.ReadCSV(r, hasHeader) }

// GaussianBlobs, FourBlobToy, MultiViewGaussians, SubspaceData,
// TwoSourceViews, UniformHypercube, RingAndBlob are the deterministic
// generators used throughout the experiments.
var (
	GaussianBlobs      = dataset.GaussianBlobs
	FourBlobToy        = dataset.FourBlobToy
	MultiViewGaussians = dataset.MultiViewGaussians
	SubspaceData       = dataset.SubspaceData
	TwoSourceViews     = dataset.TwoSourceViews
	UniformHypercube   = dataset.UniformHypercube
	RingAndBlob        = dataset.RingAndBlob
	CombineLabels      = dataset.CombineLabels
	DistanceContrast   = dataset.DistanceContrast
)

// ---------------------------------------------------------------------------
// Base learners (traditional single-solution clustering)
// ---------------------------------------------------------------------------

// KMeansConfig / KMeansResult configure and report Lloyd's k-means.
type (
	KMeansConfig = kmeans.Config
	KMeansResult = kmeans.Result
)

// Pruning selects the k-means assignment strategy (KMeansConfig.Pruning):
// Hamerly triangle-inequality bounds by default, byte-identical to the
// plain Lloyd scans in every output and recorded trajectory.
type Pruning = kmeans.Pruning

// Pruning values.
const (
	PruneDefault = kmeans.PruneDefault
	PruneOff     = kmeans.PruneOff
	PruneHamerly = kmeans.PruneHamerly
)

// KMeans clusters points with k-means++.
func KMeans(points [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	return KMeansContext(context.Background(), points, cfg)
}

// KMeansContext is KMeans with cancellation: ctx is polled after every
// Lloyd iteration; when it is done, the best clustering found so far is
// returned wrapped in ErrInterrupted.
func KMeansContext(ctx context.Context, points [][]float64, cfg KMeansConfig) (res *KMeansResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return kmeans.RunContext(ctx, points, cfg)
}

// DBSCANConfig configures density-based clustering.
type DBSCANConfig = dbscan.Config

// DBSCAN clusters points with DBSCAN under the Euclidean distance.
func DBSCAN(points [][]float64, cfg DBSCANConfig) (*Clustering, error) {
	return DBSCANContext(context.Background(), points, cfg)
}

// DBSCANContext is DBSCAN with cancellation: ctx is polled between object
// expansions; objects not yet visited when it fires are labeled Noise and
// the partial clustering is returned wrapped in ErrInterrupted. The
// Euclidean neighborhoods are served by a uniform-grid spatial index (cell
// width Eps) whenever the dimensionality permits, with labels identical to
// the linear scan.
func DBSCANContext(ctx context.Context, points [][]float64, cfg DBSCANConfig) (res *Clustering, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return dbscan.RunContext(ctx, points, nil, cfg)
}

// Linkage selects the agglomerative merge rule.
type Linkage = hierarchical.Linkage

// Linkage values.
const (
	SingleLink   = hierarchical.SingleLink
	CompleteLink = hierarchical.CompleteLink
	AverageLink  = hierarchical.AverageLink
)

// Dendrogram is an agglomerative merge history; Cut yields flat clusterings.
type Dendrogram = hierarchical.Dendrogram

// Hierarchical builds the dendrogram of points under the Euclidean distance.
func Hierarchical(points [][]float64, linkage Linkage) (res *Dendrogram, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return hierarchical.Run(points, dist.Euclidean, linkage)
}

// EMConfig / EMResult / GMM configure and report Gaussian-mixture EM.
type (
	EMConfig = em.Config
	EMResult = em.Result
	GMM      = em.Model
)

// EM fits a diagonal-covariance Gaussian mixture. A fit that collapses to a
// non-finite log-likelihood is retried on the deterministic seed schedule
// Seed+1, Seed+2, ...; exhaustion returns an error wrapping ErrDegenerate.
func EM(points [][]float64, cfg EMConfig) (*EMResult, error) {
	return EMContext(context.Background(), points, cfg)
}

// EMContext is EM with cancellation: ctx is polled after every E+M
// iteration; when it is done, the current model and posteriors are returned
// wrapped in ErrInterrupted.
func EMContext(ctx context.Context, points [][]float64, cfg EMConfig) (res *EMResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return robust.RetryValueBackoff(ctx, cfg.Seed, retryBudget, robust.Backoff{}, func(seed int64) (*EMResult, error) {
		c := cfg
		c.Seed = seed
		r, ferr := em.FitContext(ctx, points, c)
		if ferr != nil || r == nil {
			return r, ferr
		}
		if math.IsNaN(r.LogLik) || math.IsInf(r.LogLik, 0) {
			return nil, fmt.Errorf("multiclust: em seed %d: non-finite log-likelihood: %w", seed, core.ErrDegenerate)
		}
		return r, nil
	})
}

// SpectralConfig / SpectralResult configure and report normalized spectral
// clustering.
type (
	SpectralConfig = spectral.Config
	SpectralResult = spectral.Result
)

// Spectral runs normalized spectral clustering (Ng, Jordan & Weiss 2001).
// A run whose embedding degenerates to non-finite coordinates is retried on
// the deterministic seed schedule Seed+1, Seed+2, ...
func Spectral(points [][]float64, cfg SpectralConfig) (*SpectralResult, error) {
	return SpectralContext(context.Background(), points, cfg)
}

// SpectralContext is Spectral with cancellation: ctx is polled at every
// Jacobi eigensolve sweep and every k-means iteration on the embedding; the
// partial result is returned wrapped in ErrInterrupted.
func SpectralContext(ctx context.Context, points [][]float64, cfg SpectralConfig) (res *SpectralResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return robust.RetryValueBackoff(ctx, cfg.Seed, retryBudget, robust.Backoff{}, func(seed int64) (*SpectralResult, error) {
		c := cfg
		c.Seed = seed
		r, ferr := spectral.RunContext(ctx, points, c)
		if ferr != nil || r == nil {
			return r, ferr
		}
		if r.Embedding != nil {
			for _, v := range r.Embedding.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("multiclust: spectral seed %d: non-finite embedding: %w", seed, core.ErrDegenerate)
				}
			}
		}
		return r, nil
	})
}

// ---------------------------------------------------------------------------
// Section 2 — multiple clusterings in the original data space
// ---------------------------------------------------------------------------

// MetaClusteringConfig / MetaClusteringResult: Caruana et al. 2006.
type (
	MetaClusteringConfig = metaclust.Config
	MetaClusteringResult = metaclust.Result
)

// MetaClustering generates many base clusterings and groups them at the
// meta level, returning one representative per group.
func MetaClustering(points [][]float64, cfg MetaClusteringConfig) (*MetaClusteringResult, error) {
	return MetaClusteringContext(context.Background(), points, cfg)
}

// MetaClusteringContext is MetaClustering with cancellation: ctx is polled
// inside every base k-means generation; interrupted base solutions are
// still valid clusterings, the meta grouping runs on them, and the result
// is returned wrapped in ErrInterrupted.
func MetaClusteringContext(ctx context.Context, points [][]float64, cfg MetaClusteringConfig) (res *MetaClusteringResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return metaclust.RunContext(ctx, points, cfg)
}

// CoalaConfig / CoalaResult: Bae & Bailey 2006.
type (
	CoalaConfig = alternative.CoalaConfig
	CoalaResult = alternative.CoalaResult
)

// Coala computes an alternative clustering via cannot-link constrained
// agglomeration.
func Coala(points [][]float64, given *Clustering, cfg CoalaConfig) (res *CoalaResult, err error) {
	return CoalaContext(context.Background(), points, given, cfg)
}

// CoalaContext is Coala with cancellation: ctx is polled at every merge
// boundary; when it fires, the completed merges are flattened into a valid
// clustering (coarser than requested, never half-merged) and returned
// wrapped in ErrInterrupted. With a background context the output is
// byte-identical to Coala.
func CoalaContext(ctx context.Context, points [][]float64, given *Clustering, cfg CoalaConfig) (res *CoalaResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	if err := robust.ValidateClustering(given, len(points)); err != nil {
		return nil, err
	}
	return alternative.CoalaContext(ctx, points, given, cfg)
}

// CIBConfig / CIBResult: conditional information bottleneck (Gondek &
// Hofmann 2003/2004).
type (
	CIBConfig = alternative.CIBConfig
	CIBResult = alternative.CIBResult
)

// CIB computes an alternative clustering by minimizing
// I(X;C) - Beta*I(Y;C|D).
func CIB(points [][]float64, given *Clustering, cfg CIBConfig) (res *CIBResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	if err := robust.ValidateClustering(given, len(points)); err != nil {
		return nil, err
	}
	return alternative.CIB(points, given, cfg)
}

// FlexibleConfig / FlexibleResult: the tutorial's abstract problem (slide
// 27) as a runnable search with exchangeable Q and Diss definitions.
type (
	FlexibleConfig = alternative.FlexibleConfig
	FlexibleResult = alternative.FlexibleResult
)

// Flexible maximizes Q(C) + Lambda * mean Diss(C, Given_i) with pluggable
// quality and dissimilarity definitions — the "exchangeable definition"
// flexibility axis of the taxonomy.
func Flexible(points [][]float64, givens []*Clustering, q QualityFunc, diss DissimilarityFunc, cfg FlexibleConfig) (res *FlexibleResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	if err := robust.ValidateClusterings(givens, len(points)); err != nil {
		return nil, err
	}
	return alternative.Flexible(points, givens, q, diss, cfg)
}

// CondEnsConfig / CondEnsResult: conditional ensembles (Gondek & Hofmann
// 2005).
type (
	CondEnsConfig = alternative.CondEnsConfig
	CondEnsResult = alternative.CondEnsResult
)

// CondEns selects an alternative clustering from a diverse ensemble by
// quality minus information overlap with the given clustering.
func CondEns(points [][]float64, given *Clustering, cfg CondEnsConfig) (res *CondEnsResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	if err := robust.ValidateClustering(given, len(points)); err != nil {
		return nil, err
	}
	return alternative.CondEns(points, given, cfg)
}

// MinCEntropyConfig / MinCEntropyResult: Vinh & Epps 2010.
type (
	MinCEntropyConfig = alternative.MinCEntropyConfig
	MinCEntropyResult = alternative.MinCEntropyResult
)

// MinCEntropy finds an alternative to a SET of given clusterings by
// penalized kernel-quality search.
func MinCEntropy(points [][]float64, givens []*Clustering, cfg MinCEntropyConfig) (res *MinCEntropyResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	if err := robust.ValidateClusterings(givens, len(points)); err != nil {
		return nil, err
	}
	return alternative.MinCEntropy(points, givens, cfg)
}

// DecKMeansConfig / DecKMeansResult: Jain, Meka & Dhillon 2008.
type (
	DecKMeansConfig = simultaneous.DecKMeansConfig
	DecKMeansResult = simultaneous.DecKMeansResult
)

// DecKMeans fits T decorrelated k-means clusterings simultaneously.
func DecKMeans(points [][]float64, cfg DecKMeansConfig) (res *DecKMeansResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return simultaneous.DecKMeans(points, cfg)
}

// CAMIConfig / CAMIResult: Dang & Bailey 2010a.
type (
	CAMIConfig = simultaneous.CAMIConfig
	CAMIResult = simultaneous.CAMIResult
)

// CAMI fits two mixture models maximizing likelihood minus mutual
// information between the clusterings.
func CAMI(points [][]float64, cfg CAMIConfig) (res *CAMIResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return simultaneous.CAMI(points, cfg)
}

// ContingencyConfig / ContingencyResult: Hossain et al. 2010.
type (
	ContingencyConfig = simultaneous.ContingencyConfig
	ContingencyResult = simultaneous.ContingencyResult
)

// Contingency finds two prototype-based clusterings with a near-uniform
// contingency table.
func Contingency(points [][]float64, cfg ContingencyConfig) (res *ContingencyResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return simultaneous.Contingency(points, cfg)
}

// ---------------------------------------------------------------------------
// Section 3 — orthogonal space transformations
// ---------------------------------------------------------------------------

// Base is the pluggable clustering step used inside transformation methods.
type Base = orthogonal.Base

// KMeansBase adapts k-means as the base learner for transformation methods.
func KMeansBase(k int, seed int64) Base { return orthogonal.KMeansBase(k, seed) }

// MetricFlipResult: Davidson & Qi 2008.
type MetricFlipResult = orthogonal.MetricFlipResult

// MetricFlip learns a metric from the given clustering, SVDs it and inverts
// the stretch to reveal an alternative grouping.
func MetricFlip(points [][]float64, given *Clustering, base Base) (res *MetricFlipResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	if err := robust.ValidateClustering(given, len(points)); err != nil {
		return nil, err
	}
	return orthogonal.MetricFlip(points, given, base)
}

// AlternativeTransformResult: Qi & Davidson 2009.
type AlternativeTransformResult = orthogonal.AlternativeTransformResult

// AlternativeTransform applies the closed-form M = Sigma~^{-1/2} transform.
func AlternativeTransform(points [][]float64, given *Clustering, base Base) (res *AlternativeTransformResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	if err := robust.ValidateClustering(given, len(points)); err != nil {
		return nil, err
	}
	return orthogonal.AlternativeTransform(points, given, base)
}

// OrthogonalProjectionsConfig / ProjectionIteration: Cui, Fern & Dy 2007.
type (
	OrthogonalProjectionsConfig = orthogonal.OrthogonalProjectionsConfig
	ProjectionIteration         = orthogonal.ProjectionIteration
)

// OrthogonalProjections iteratively clusters and projects the data onto the
// orthogonal complement of each clustering's mean subspace.
func OrthogonalProjections(points [][]float64, base Base, cfg OrthogonalProjectionsConfig) (res []ProjectionIteration, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return orthogonal.OrthogonalProjections(points, base, cfg)
}

// ---------------------------------------------------------------------------
// Section 4 — subspace projections
// ---------------------------------------------------------------------------

// Subspace clustering configs and results.
type (
	CliqueConfig   = subspace.CliqueConfig
	CliqueResult   = subspace.CliqueResult
	SchismConfig   = subspace.SchismConfig
	SchismResult   = subspace.SchismResult
	SubcluConfig   = subspace.SubcluConfig
	DuscConfig     = subspace.DuscConfig
	SubcluResult   = subspace.SubcluResult
	ProclusConfig  = subspace.ProclusConfig
	ProclusResult  = subspace.ProclusResult
	DOCConfig      = subspace.DOCConfig
	DOCResult      = subspace.DOCResult
	EnclusConfig   = subspace.EnclusConfig
	RISConfig      = subspace.RISConfig
	RISScore       = subspace.RISScore
	SubspaceScore  = subspace.SubspaceScore
	OscluConfig    = subspace.OscluConfig
	AscluConfig    = subspace.AscluConfig
	StatPCConfig   = subspace.StatPCConfig
	StatPCResult   = subspace.StatPCResult
	RescuConfig    = subspace.RescuConfig
	GridCluster    = subspace.GridCluster
	GridStats      = subspace.GridStats
	FiresConfig    = subspace.FiresConfig
	FiresResult    = subspace.FiresResult
	MineClusConfig = subspace.MineClusConfig
	MineClusResult = subspace.MineClusResult
	OrclusConfig   = subspace.OrclusConfig
	OrclusResult   = subspace.OrclusResult
	OrclusCluster  = subspace.OrclusCluster
	PredeconConfig = subspace.PredeconConfig
	PredeconResult = subspace.PredeconResult
)

// Clique finds all clusters as connected dense grid cells in every subspace
// (Agrawal et al. 1998). Points must be normalized to [0,1]^d.
func Clique(points [][]float64, cfg CliqueConfig) (res *CliqueResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.Clique(points, cfg)
}

// Schism runs the grid search with the dimensionality-adaptive
// Chernoff–Hoeffding threshold (Sequeira & Zaki 2004).
func Schism(points [][]float64, cfg SchismConfig) (res *SchismResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.Schism(points, cfg)
}

// Subclu finds density-connected clusters in all subspaces (Kailing et al.
// 2004b).
func Subclu(points [][]float64, cfg SubcluConfig) (res *SubcluResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.Subclu(points, cfg)
}

// Dusc runs SUBCLU with DUSC's dimensionality-unbiased density threshold
// (Assent et al. 2007).
func Dusc(points [][]float64, cfg DuscConfig) (res *SubcluResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.Dusc(points, cfg)
}

// Proclus runs projected k-medoid clustering (Aggarwal et al. 1999).
func Proclus(points [][]float64, cfg ProclusConfig) (*ProclusResult, error) {
	return ProclusContext(context.Background(), points, cfg)
}

// ProclusContext is Proclus with cancellation: ctx is polled at every
// medoid-refinement iteration; the best projected clustering so far is
// returned wrapped in ErrInterrupted.
func ProclusContext(ctx context.Context, points [][]float64, cfg ProclusConfig) (res *ProclusResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.ProclusContext(ctx, points, cfg)
}

// DOC finds projective clusters by Monte-Carlo sampling (Procopiuc et al.
// 2002).
func DOC(points [][]float64, cfg DOCConfig) (*DOCResult, error) {
	return DOCContext(context.Background(), points, cfg)
}

// DOCContext is DOC with cancellation: ctx is polled between cluster hunts;
// the clusters found so far are returned wrapped in ErrInterrupted.
func DOCContext(ctx context.Context, points [][]float64, cfg DOCConfig) (res *DOCResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.DOCContext(ctx, points, cfg)
}

// Enclus ranks subspaces by grid entropy (Cheng, Fu & Zhang 1999).
func Enclus(points [][]float64, cfg EnclusConfig) (res []SubspaceScore, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.Enclus(points, cfg)
}

// RIS ranks subspaces by density-based interestingness (Kailing et al.
// 2003).
func RIS(points [][]float64, cfg RISConfig) (res []RISScore, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.RIS(points, cfg)
}

// Osclu selects an orthogonal-concept result set out of a redundant
// candidate pool (Günnemann et al. 2009).
func Osclu(all SubspaceClustering, cfg OscluConfig) (res SubspaceClustering, err error) {
	defer robust.RecoverTo(&err)
	return subspace.Osclu(all, cfg)
}

// Asclu selects alternative subspace clusters w.r.t. a Known clustering
// (Günnemann et al. 2010).
func Asclu(all SubspaceClustering, cfg AscluConfig) (res SubspaceClustering, err error) {
	defer robust.RecoverTo(&err)
	return subspace.Asclu(all, cfg)
}

// StatPC keeps statistically significant, unexplained clusters (reduced-form
// Moise & Sander 2008).
func StatPC(candidates []GridCluster, cfg StatPCConfig) (res *StatPCResult, err error) {
	defer robust.RecoverTo(&err)
	return subspace.StatPC(candidates, cfg)
}

// Rescu admits interesting clusters and excludes globally redundant ones
// (reduced-form Müller et al. 2009c).
func Rescu(all SubspaceClustering, cfg RescuConfig) (res SubspaceClustering, err error) {
	defer robust.RecoverTo(&err)
	return subspace.Rescu(all, cfg)
}

// Fires approximates maximal-dimensional subspace clusters by merging
// one-dimensional base clusters (Kriegel et al. 2005).
func Fires(points [][]float64, cfg FiresConfig) (res *FiresResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.Fires(points, cfg)
}

// MineClus finds projective clusters with the deterministic
// frequent-pattern search (Yiu & Mamoulis 2003).
func MineClus(points [][]float64, cfg MineClusConfig) (*MineClusResult, error) {
	return MineClusContext(context.Background(), points, cfg)
}

// MineClusContext is MineClus with cancellation: ctx is polled between
// cluster hunts; the clusters found so far are returned wrapped in
// ErrInterrupted.
func MineClusContext(ctx context.Context, points [][]float64, cfg MineClusConfig) (res *MineClusResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.MineClusContext(ctx, points, cfg)
}

// Orclus finds arbitrarily oriented projected clusters (Aggarwal & Yu 2000).
func Orclus(points [][]float64, cfg OrclusConfig) (*OrclusResult, error) {
	return OrclusContext(context.Background(), points, cfg)
}

// OrclusContext is Orclus with cancellation: ctx is polled at every
// assign-recompute iteration; the clustering finalized from the current
// centers is returned wrapped in ErrInterrupted.
func OrclusContext(ctx context.Context, points [][]float64, cfg OrclusConfig) (res *OrclusResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.OrclusContext(ctx, points, cfg)
}

// Predecon runs density-connected clustering with local subspace
// preferences (Böhm et al. 2004a).
func Predecon(points [][]float64, cfg PredeconConfig) (res *PredeconResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return subspace.Predecon(points, cfg)
}

// ---------------------------------------------------------------------------
// Section 5 — multiple given views/sources
// ---------------------------------------------------------------------------

// Multi-view configs and results.
type (
	CoEMConfig                     = multiview.CoEMConfig
	CoEMResult                     = multiview.CoEMResult
	MVDBSCANConfig                 = multiview.MVDBSCANConfig
	CombineMode                    = multiview.CombineMode
	MSCConfig                      = multiview.MSCConfig
	MSCView                        = multiview.MSCView
	UniversesConfig                = multiview.UniversesConfig
	UniversesResult                = multiview.UniversesResult
	DistributedDBSCANConfig        = multiview.DistributedDBSCANConfig
	DistributedDBSCANResult        = multiview.DistributedDBSCANResult
	ConsensusConfig                = multiview.ConsensusConfig
	RandomProjectionEnsembleConfig = multiview.RandomProjectionEnsembleConfig
	RandomProjectionEnsembleResult = multiview.RandomProjectionEnsembleResult
)

// Neighbourhood combination modes for MVDBSCAN.
const (
	Union        = multiview.Union
	Intersection = multiview.Intersection
)

// CoEM runs interleaved two-view EM (Bickel & Scheffer 2004).
func CoEM(viewA, viewB [][]float64, cfg CoEMConfig) (res *CoEMResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateViews(viewA, viewB); err != nil {
		return nil, err
	}
	return multiview.CoEM(viewA, viewB, cfg)
}

// MVDBSCAN runs multi-represented DBSCAN with union or intersection
// neighbourhoods (Kailing et al. 2004a).
func MVDBSCAN(views [][][]float64, cfg MVDBSCANConfig) (res *Clustering, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateViews(views...); err != nil {
		return nil, err
	}
	return multiview.MVDBSCAN(views, cfg)
}

// TwoViewSpectral clusters two views via their combined affinity (de Sa
// 2005).
func TwoViewSpectral(viewA, viewB [][]float64, k int, seed int64) (res *Clustering, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateViews(viewA, viewB); err != nil {
		return nil, err
	}
	return multiview.TwoViewSpectral(viewA, viewB, k, seed)
}

// MSC extracts multiple non-redundant spectral views (Niu & Dy 2010 style).
func MSC(points [][]float64, cfg MSCConfig) (res []MSCView, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return multiview.MSC(points, cfg)
}

// HSIC measures statistical dependence between two feature groups (Gretton
// et al. 2005).
func HSIC(x, y [][]float64) (v float64, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateViews(x, y); err != nil {
		return 0, err
	}
	return multiview.HSIC(x, y)
}

// ParallelUniverses runs fuzzy clustering in parallel universes (Wiswedel,
// Höppner & Berthold 2010): objects learn which universe (view) they belong
// to while each universe clusters only its own objects.
func ParallelUniverses(views [][][]float64, cfg UniversesConfig) (res *UniversesResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateViews(views...); err != nil {
		return nil, err
	}
	return multiview.ParallelUniverses(views, cfg)
}

// DistributedDBSCAN runs scalable density-based distributed clustering
// (Januzaj, Kriegel & Pfeifle 2004): local DBSCAN per site, representative
// exchange, central merge.
func DistributedDBSCAN(points [][]float64, cfg DistributedDBSCANConfig) (res *DistributedDBSCANResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return multiview.DistributedDBSCAN(points, cfg)
}

// CSPA computes a consensus clustering from hard labelings (Strehl & Ghosh
// 2002).
func CSPA(labelings [][]int, cfg ConsensusConfig) (res *Clustering, err error) {
	defer robust.RecoverTo(&err)
	if len(labelings) == 0 {
		return nil, core.ErrEmptyDataset
	}
	for i, l := range labelings {
		if err := robust.ValidateLabels(l, len(labelings[0])); err != nil {
			return nil, fmt.Errorf("multiclust: labeling %d: %w", i, err)
		}
	}
	return multiview.CSPA(labelings, cfg)
}

// SharedNMI is the ensemble objective of Strehl & Ghosh.
func SharedNMI(consensus []int, labelings [][]int) float64 {
	return multiview.SharedNMI(consensus, labelings)
}

// RandomProjectionEnsemble runs the Fern & Brodley (2003) consensus
// pipeline.
func RandomProjectionEnsemble(points [][]float64, cfg RandomProjectionEnsembleConfig) (res *RandomProjectionEnsembleResult, err error) {
	defer robust.RecoverTo(&err)
	if err := robust.ValidateDataset(points); err != nil {
		return nil, err
	}
	return multiview.RandomProjectionEnsemble(points, cfg)
}

// ---------------------------------------------------------------------------
// Metrics — the Q and Diss functions
// ---------------------------------------------------------------------------

// Clustering comparison and quality measures. The float64-returning
// measures keep the DissimilarityFunc-compatible signature and return NaN —
// never panic — on mismatched inputs; use ValidatePair for a typed error.
var (
	RandIndex              = metrics.RandIndex
	AdjustedRand           = metrics.AdjustedRand
	JaccardIndex           = metrics.JaccardIndex
	PairF1                 = metrics.PairF1
	NMI                    = metrics.NMI
	VariationOfInformation = metrics.VariationOfInformation
	MutualInformation      = metrics.MutualInformation
	ConditionalEntropy     = metrics.ConditionalEntropy
	Purity                 = metrics.Purity
	SSE                    = metrics.SSE
	Silhouette             = metrics.Silhouette
	SubspaceF1             = metrics.SubspaceF1
	SubspaceDimPrecision   = metrics.SubspaceDimPrecision
	Redundancy             = metrics.Redundancy
	ADCO                   = metrics.ADCO
)

// QualityFunc / DissimilarityFunc are the tutorial's abstract Q and Diss
// interfaces (slide 27); ready-made instances below.
type (
	QualityFunc       = core.QualityFunc
	DissimilarityFunc = core.DissimilarityFunc
)

// Ready-made Q and Diss instances and the combined-objective evaluator of
// slide 39.
var (
	NegSSEQuality       = metrics.NegSSEQuality
	SilhouetteQuality   = metrics.SilhouetteQuality
	RandDissimilarity   = metrics.RandDissimilarity
	VIDissimilarity     = metrics.VIDissimilarity
	NMIDissimilarity    = metrics.NMIDissimilarity
	ADCODissimilarity   = metrics.ADCODissimilarity
	EvaluateSolutionSet = metrics.EvaluateSolutionSet
)

// ---------------------------------------------------------------------------
// Streaming / incremental clustering
// ---------------------------------------------------------------------------

// Streaming learners consume a row stream chunk by chunk (Push) and
// materialize their current state on demand (Snapshot). The contract,
// pinned by internal/stream/streamtest: a single-chunk stream is
// byte-identical to the batch algorithm on the same rows; multi-chunk
// streams stay inside a pinned drift envelope; snapshots are
// byte-identical at any worker count. PushContext/SnapshotContext honour
// cancellation at chunk boundaries with best-so-far ErrInterrupted
// semantics. Learners are not safe for concurrent use — the serve layer
// serializes chunk processing per job.
type (
	// StreamKMeansConfig configures incremental mini-batch k-means
	// (Sculley 2010 on this repo's deterministic batch core).
	StreamKMeansConfig = stream.MiniBatchConfig
	// StreamKMeans is the mini-batch k-means learner.
	StreamKMeans = stream.MiniBatch
	// StreamKMeansSnapshot is its point-in-time state (centers, counts,
	// last-chunk labels and SSE).
	StreamKMeansSnapshot = stream.KMeansSnapshot
	// StreamEnsembleConfig configures the sliding-window meta-clustering
	// ensemble (base solutions per chunk, window length, meta clusters).
	StreamEnsembleConfig = stream.EnsembleConfig
	// StreamEnsemble is the mergeable sliding-window ensemble learner.
	StreamEnsemble = stream.Ensemble
	// StreamEnsembleSnapshot is the grouped view of the current window.
	StreamEnsembleSnapshot = stream.EnsembleSnapshot
	// StreamCoEMConfig configures online multi-view co-EM with
	// exponential forgetting.
	StreamCoEMConfig = stream.CoEMConfig
	// StreamCoEM is the online co-EM learner.
	StreamCoEM = stream.CoEM
	// StreamCoEMSnapshot carries both view models and the consensus
	// clustering of the most recent chunk.
	StreamCoEMSnapshot = stream.CoEMSnapshot
)

// NewStreamKMeans builds an incremental mini-batch k-means learner.
func NewStreamKMeans(cfg StreamKMeansConfig) (*StreamKMeans, error) {
	return stream.NewMiniBatch(cfg)
}

// NewStreamEnsemble builds a sliding-window meta-clustering ensemble.
func NewStreamEnsemble(cfg StreamEnsembleConfig) (*StreamEnsemble, error) {
	return stream.NewEnsemble(cfg)
}

// NewStreamCoEM builds an online co-EM learner over column-split views.
func NewStreamCoEM(cfg StreamCoEMConfig) (*StreamCoEM, error) {
	return stream.NewCoEM(cfg)
}

// ---------------------------------------------------------------------------
// Taxonomy
// ---------------------------------------------------------------------------

// TaxonomyEntry is one row of the tutorial's comparison table.
type TaxonomyEntry = taxonomy.Entry

// Taxonomy returns the classification of every implemented algorithm.
func Taxonomy() []TaxonomyEntry { return taxonomy.Registry() }

// WriteTaxonomyTable renders the comparison table (tutorial slide 116).
func WriteTaxonomyTable(w io.Writer) error { return taxonomy.WriteTable(w) }
