package multiclust_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"multiclust"
)

// metaSpanTree runs the same seeded meta-clustering workload at the given
// worker count and renders its span tree with timings stripped.
func metaSpanTree(t *testing.T, workers int) string {
	t.Helper()
	col := multiclust.NewCollector()
	ctx := multiclust.WithRecorder(context.Background(), col)
	ds, _, _ := multiclust.FourBlobToy(1, 40)
	if _, err := multiclust.MetaClusteringContext(ctx, ds.Points, multiclust.MetaClusteringConfig{
		K: 2, NumSolutions: 8, MetaClusters: 3, Seed: 1, Workers: workers,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.Snapshot().StripTimings().WriteSpanTree(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The span hierarchy is part of the determinism contract: the same seeded
// run must produce a byte-identical shape tree at any parallelism, because
// worker goroutines attach their spans to the context parent, not to
// whichever goroutine happened to dispatch them.
func TestSpanTreeDeterministicAcrossWorkers(t *testing.T) {
	want := metaSpanTree(t, 1)
	for _, line := range []string{
		"metaclust.run count=1",
		"  metaclust.generate count=1",
		"    kmeans.run count=8",
		"  metaclust.group count=1",
	} {
		if !strings.Contains(want, line+" ") && !strings.Contains(want, line+"\n") {
			t.Fatalf("span tree missing %q:\n%s", line, want)
		}
	}
	for _, workers := range []int{2, 4, 8} {
		if got := metaSpanTree(t, workers); got != want {
			t.Errorf("span tree at workers=%d differs from workers=1:\n--- got ---\n%s--- want ---\n%s", workers, got, want)
		}
	}
}

// A CPU profile captured around an instrumented run must carry the
// algo/phase pprof labels applied by the spans, so `go tool pprof
// -tagfocus algo=kmeans` can attribute samples.
func TestCPUProfileCarriesSpanLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("samples the CPU for ~1s")
	}
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := multiclust.StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A second concurrent CPU profile must error, not silently truncate.
	if _, err := multiclust.StartCPUProfile(filepath.Join(t.TempDir(), "again.pprof")); err == nil {
		stop()
		t.Fatal("overlapping StartCPUProfile succeeded; only one capture can be active")
	}
	col := multiclust.NewCollector()
	ctx := multiclust.WithRecorder(context.Background(), col)
	blobs, _ := multiclust.GaussianBlobs(1, 600, [][]float64{
		{0, 0, 0, 0}, {4, 4, 0, 0}, {0, 4, 4, 0}, {4, 0, 0, 4},
	}, 0.6)
	for deadline := time.Now().Add(time.Second); time.Now().Before(deadline); {
		if _, err := multiclust.KMeansContext(ctx, blobs.Points, multiclust.KMeansConfig{K: 4, Restarts: 4, Seed: 1}); err != nil {
			stop()
			t.Fatal(err)
		}
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("profile is not gzip-compressed (prefix % x)", raw[:min(4, len(raw))])
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	proto, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	// The proto string table stores label keys and values verbatim.
	for _, want := range []string{"algo", "phase", "kmeans"} {
		if !bytes.Contains(proto, []byte(want)) {
			t.Errorf("profile string table missing %q; span labels were not applied", want)
		}
	}
}

func TestWriteHeapProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pprof")
	if err := multiclust.WriteHeapProfile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("heap profile is not gzip-compressed (prefix % x)", raw[:min(4, len(raw))])
	}
	if err := multiclust.WriteHeapProfile(filepath.Join(t.TempDir(), "no-such-dir", "heap.pprof")); err == nil {
		t.Error("unwritable path should fail")
	}
}

// The facade StartSpan must nest under an enclosing facade span and show
// up as one tree path in the collector.
func TestFacadeStartSpanNests(t *testing.T) {
	col := multiclust.NewCollector()
	ctx := multiclust.WithRecorder(context.Background(), col)
	rctx, endRoot := multiclust.StartSpan(ctx, "app.request")
	_, endChild := multiclust.StartSpan(rctx, "app.step")
	endChild()
	endRoot()
	var buf bytes.Buffer
	if err := col.Snapshot().WriteSpanTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "app.request count=1") || !strings.Contains(buf.String(), "  app.step count=1") {
		t.Errorf("facade spans did not nest:\n%s", buf.String())
	}
}
