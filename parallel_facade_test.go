package multiclust_test

import (
	"testing"

	"multiclust"
)

// The facade knob must change only where work runs, never what it computes:
// the same pipeline run under SetWorkers(1) and SetWorkers(4) must produce
// exactly identical results. Exercised under -race via `make race`.
func TestSetWorkersDoesNotChangeResults(t *testing.T) {
	ds, hor, _ := multiclust.FourBlobToy(1, 30)
	given := multiclust.NewClustering(hor)

	type outcome struct {
		kmeansLabels []int
		kmeansSSE    float64
		dbscanLabels []int
		condensBest  int
	}
	runAll := func() outcome {
		km, err := multiclust.KMeans(ds.Points, multiclust.KMeansConfig{K: 2, Seed: 1, Restarts: 8})
		if err != nil {
			t.Fatal(err)
		}
		db, err := multiclust.DBSCAN(ds.Points, multiclust.DBSCANConfig{Eps: 1.5, MinPts: 3})
		if err != nil {
			t.Fatal(err)
		}
		ce, err := multiclust.CondEns(ds.Points, given, multiclust.CondEnsConfig{K: 2, NumSolutions: 8, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{
			kmeansLabels: km.Clustering.Labels,
			kmeansSSE:    km.SSE,
			dbscanLabels: db.Labels,
			condensBest:  ce.BestIndex,
		}
	}

	multiclust.SetWorkers(1)
	serial := runAll()
	multiclust.SetWorkers(4)
	parallel := runAll()
	multiclust.SetWorkers(0)
	if multiclust.WorkersDefault() != 0 {
		t.Error("SetWorkers(0) should clear the default")
	}

	if serial.kmeansSSE != parallel.kmeansSSE {
		t.Errorf("k-means SSE differs: %v vs %v", serial.kmeansSSE, parallel.kmeansSSE)
	}
	for i := range serial.kmeansLabels {
		if serial.kmeansLabels[i] != parallel.kmeansLabels[i] {
			t.Fatalf("k-means label %d differs", i)
		}
	}
	for i := range serial.dbscanLabels {
		if serial.dbscanLabels[i] != parallel.dbscanLabels[i] {
			t.Fatalf("DBSCAN label %d differs", i)
		}
	}
	if serial.condensBest != parallel.condensBest {
		t.Errorf("CondEns best index differs: %d vs %d", serial.condensBest, parallel.condensBest)
	}
}
