package multiclust

import (
	"context"
	"fmt"
	"testing"

	"multiclust/internal/em"
	"multiclust/internal/kmeans"
)

// The robustness layer must be effectively free on the hot paths: the
// validation gate is a single O(n*d) scan before an algorithm that does at
// least O(n*d*k*iters) work, and the cancellation poll is one ctx.Err()
// call per iteration (sub-nanosecond on a background context). These
// benchmarks pin the facade (gate + recover + retry wrapper) against the
// direct internal call at workers=1 and workers=4 so a regression shows up
// as a ratio drift. At this deliberately small workload (n=1000, fast
// convergence) the facade delta measures ~2-3%; it shrinks toward zero as
// iteration count and data size grow, since the gate does not scale with
// either k or iters.

func benchBlobs(n int) [][]float64 {
	centers := [][]float64{{0, 0, 0, 0, 0, 0, 0, 0}, {6, 6, 6, 0, 0, 0, 0, 0}, {0, 0, 6, 6, 6, 0, 0, 0}}
	ds, _ := GaussianBlobs(3, n, centers, 0.6)
	return ds.Points
}

func BenchmarkKMeansFacade(b *testing.B) {
	pts := benchBlobs(1000)
	for _, w := range []int{1, 4} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			cfg := KMeansConfig{K: 3, Seed: 1, Restarts: 2, Workers: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := KMeans(pts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKMeansDirect(b *testing.B) {
	pts := benchBlobs(1000)
	for _, w := range []int{1, 4} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			cfg := kmeans.Config{K: 3, Seed: 1, Restarts: 2, Workers: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kmeans.Run(pts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEMFacade(b *testing.B) {
	pts := benchBlobs(600)
	for _, w := range []int{1, 4} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			SetWorkers(w)
			defer SetWorkers(0)
			cfg := EMConfig{K: 3, Seed: 1, MaxIter: 50}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EM(pts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEMDirect(b *testing.B) {
	pts := benchBlobs(600)
	for _, w := range []int{1, 4} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			SetWorkers(w)
			defer SetWorkers(0)
			cfg := em.Config{K: 3, Seed: 1, MaxIter: 50}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := em.Fit(pts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkValidationGate isolates the gate itself: one pass over n*d cells.
func BenchmarkValidationGate(b *testing.B) {
	pts := benchBlobs(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ValidateDataset(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCancellationPoll isolates the per-iteration ctx.Err() check the
// Context variants add at each iteration boundary.
func BenchmarkCancellationPoll(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ctx.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(k string, v int) string {
	return fmt.Sprintf("%s=%d", k, v)
}
